"""Elastic membership: epoch-numbered views with join/leave/evict.

The paper's testbed fixes the site set for a run's lifetime.  This module
adds the membership substrate the ROADMAP's "sharding + elastic
membership" item calls for: a :class:`ViewManager` that advances the
cluster through numbered **view epochs**, each epoch differing from its
predecessor by exactly one site joining, leaving, or being evicted.

Design (see docs/membership.md):

* **Stable site ids.**  A joining site gets the next never-used id, so
  ids are append-only and every index-keyed structure (protocol lists,
  per-site disks, matrix-clock rows) stays position-aligned forever.
  Departed ids are never reused; *capacity* (the id space) only grows.
* **Fence-and-drain view changes.**  A view change first *fences* the
  cluster: application processes are held, and the manager waits until
  every in-flight protocol message has been delivered and every buffered
  update applied.  Only then is the membership mutated, metadata
  resized, and the new epoch announced.  Draining first means no
  protocol message ever crosses an epoch boundary, which keeps the
  per-protocol resize logic trivial (pad with zeros) and provably safe.
* **Join = PR-3 bootstrap pipeline.**  A joiner is brought up through
  the same checkpoint-restore -> WAL-replay path a crash-recovering
  site uses: under full replication the lowest-id live member acts as
  donor (its drained snapshot is installed as the joiner's
  checkpoint-zero), under partial replication the joiner starts with an
  empty replica set and a trivially-complete checkpoint.
* **Leave = drain + replica handoff.**  Variables solely replicated at
  the leaver are handed to its clockwise live successor (value, write
  id, and last-write metadata), so no data is lost on a planned leave.
* **Evict = failure-detector escalation.**  A persistently-suspected
  crash-stopped site is removed from the view instead of being
  retransmitted at forever.  Solely-held variables whose only replica
  was the victim come back as |bot| and are counted in
  ``lost_variables`` — graceful degradation, not silent loss.

Operations addressed at a departed site fail fast with
:class:`DepartedSiteError`; ids that never existed raise
:class:`UnknownSiteError` (a ``ValueError`` subclass, so existing
out-of-range call sites keep their exception contract).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.base import CausalProtocol
    from .crash import CrashRecoveryManager
    from .engine import Simulator
    from .network import Network
    from .process import Site

__all__ = [
    "MembershipError",
    "UnknownSiteError",
    "DepartedSiteError",
    "MembershipPolicy",
    "View",
    "ViewManager",
]


# The exception vocabulary moved to repro.core.errors (the protocol
# layer raises DepartedSiteError itself); re-exported here so existing
# `from repro.sim.membership import ...` call sites keep working.
from ..core.errors import (  # noqa: E402  -- re-export after __all__
    DepartedSiteError,
    MembershipError,
    UnknownSiteError,
)


@dataclass(frozen=True)
class MembershipPolicy:
    """Tunables for view-change execution.

    ``evict_after_ms`` is how long a crash-stopped site may stay
    persistently suspected before the detector escalation turns the
    suspicion into an eviction.  ``max_fence_ms`` bounds how long a
    fence may wait for the drain predicate (a fence that cannot drain —
    e.g. an unhealable partition — is a configuration error, not
    something to wait out forever).
    """

    evict_after_ms: float = 1500.0
    poll_interval_ms: float = 5.0
    max_fence_ms: float = 120_000.0
    retry_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.evict_after_ms < 0:
            raise ValueError(f"evict_after_ms must be >= 0, got {self.evict_after_ms}")
        if self.poll_interval_ms <= 0:
            raise ValueError(
                f"poll_interval_ms must be > 0, got {self.poll_interval_ms}"
            )
        if self.max_fence_ms <= 0:
            raise ValueError(f"max_fence_ms must be > 0, got {self.max_fence_ms}")


@dataclass(frozen=True)
class View:
    """One membership epoch: which site ids are members right now.

    ``capacity`` is the size of the id space (max issued id + 1); it
    only grows.  ``members`` is the sorted tuple of live-or-crashed ids
    that belong to the current epoch (a crashed-but-recoverable site
    remains a member; only leave/evict remove membership).
    """

    epoch: int
    members: tuple[int, ...]
    capacity: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(sorted(self.members)))

    def __contains__(self, site: int) -> bool:
        return site in self.members

    @property
    def member_set(self) -> frozenset:
        return frozenset(self.members)


@dataclass
class _PendingChange:
    kind: str  # "join" | "leave" | "evict"
    site: Optional[int] = None
    first_attempt_ms: Optional[float] = None


@dataclass
class MembershipStats:
    """Lifetime counters for one :class:`ViewManager`."""

    joins: int = 0
    leaves: int = 0
    evictions: int = 0
    handoffs: int = 0
    lost_variables: int = 0
    skipped_changes: int = 0
    fences: int = 0
    epoch_log: list = field(default_factory=list)  # (time_ms, View)


class ViewManager:
    """Drives epoch-based view changes over a running simulation.

    The manager owns the canonical :class:`View` and serializes all
    membership changes through a single fence at a time.  It is wired
    into the rest of the stack through small, explicit hooks rather
    than imports (``protocol_factory`` / ``site_factory`` closures from
    the runner or cluster facade), which keeps this module free of
    dependency cycles.

    Two driving modes:

    * **event-driven** (the runner): changes are enqueued (from a
      :class:`~repro.sim.faults.FaultPlan`'s membership events or the
      detector escalation) and executed by scheduled fence-poll events;
    * **synchronous** (the interactive cluster): :meth:`run_change`
      steps the simulator inline until the fence drains, then mutates.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        placement,
        protocols: "list[CausalProtocol]",
        *,
        protocol_factory: Callable[[int], "CausalProtocol"],
        site_factory: Optional[Callable[[int, "CausalProtocol"], "Site"]] = None,
        sites: Optional["list[Site]"] = None,
        crash_manager: Optional["CrashRecoveryManager"] = None,
        policy: Optional[MembershipPolicy] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.placement = placement
        self.protocols = protocols
        self.protocol_factory = protocol_factory
        self.site_factory = site_factory
        self.sites = sites
        self.crash_manager = crash_manager
        self.policy = policy or MembershipPolicy()

        n = network.n_sites
        self.view = View(epoch=0, members=tuple(range(n)), capacity=n)
        #: site id -> "left" | "evicted", with the epoch it departed in
        self.departed: dict[int, tuple[str, int]] = {}
        self.stats = MembershipStats()
        self.stats.epoch_log.append((sim.now, self.view))
        #: metrics registry (wired post-construction by the runner;
        #: None is the zero-overhead path)
        self.registry = None

        self._queue: deque[_PendingChange] = deque()
        self._active: Optional[_PendingChange] = None
        self._fence_started = 0.0
        self._evict_pending: set[int] = set()

        if crash_manager is not None:
            crash_manager.view_manager = self
        detector = self.detector
        if detector is not None:
            detector.members_fn = lambda: self.view.members

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def detector(self):
        mgr = self.crash_manager
        return None if mgr is None else mgr.detector

    @property
    def durability(self):
        mgr = self.crash_manager
        return None if mgr is None else mgr.durability

    @property
    def epoch(self) -> int:
        return self.view.epoch

    def busy(self) -> bool:
        """True while a change is fencing, queued, or escalation-pending
        — the infrastructure ticks must not go quiescent under it."""
        return (self._active is not None or bool(self._queue)
                or bool(self._evict_pending))

    def is_member(self, site: int) -> bool:
        return site in self.view

    def membership_status(self, site: int) -> str:
        """``"member"``, ``"left"``, ``"evicted"``, or ``"unknown"``."""
        if site in self.view:
            return "member"
        gone = self.departed.get(site)
        if gone is not None:
            return gone[0]
        return "unknown"

    def check_member(self, site: int) -> None:
        """Raise the typed error for a non-member site id."""
        if site in self.view:
            return
        gone = self.departed.get(site)
        if gone is not None:
            raise DepartedSiteError(site, gone[0], gone[1])
        raise UnknownSiteError(site, self.view.capacity)

    # ------------------------------------------------------------------
    # event-driven entry points (runner / detector escalation)
    # ------------------------------------------------------------------
    def schedule_plan(self, membership_events) -> None:
        """Schedule a fault plan's join/leave events on the simulator."""
        from .faults import JoinEvent, LeaveEvent

        for ev in sorted(membership_events, key=lambda e: e.at_ms):
            if isinstance(ev, JoinEvent):
                self.sim.schedule_at(
                    ev.at_ms, self.request_join, label="membership-join"
                )
            elif isinstance(ev, LeaveEvent):
                site = ev.site
                self.sim.schedule_at(
                    ev.at_ms,
                    lambda s=site: self.request_leave(s),
                    label="membership-leave",
                )
            else:  # pragma: no cover - guarded by FaultPlan.validate
                raise TypeError(f"unknown membership event {ev!r}")

    def request_join(self) -> None:
        self._queue.append(_PendingChange("join"))
        self._pump()

    def request_leave(self, site: int) -> None:
        self._queue.append(_PendingChange("leave", site))
        self._pump()

    def request_evict(self, site: int) -> None:
        if site in self._evict_pending or site in self.departed:
            return
        self._evict_pending.add(site)
        self._queue.append(_PendingChange("evict", site))
        self._pump()

    def enable_eviction(self, after_ms: Optional[float] = None) -> None:
        """Chain onto the failure detector: persistent suspicion of a
        crash-stopped site escalates into an eviction after ``after_ms``."""
        detector = self.detector
        if detector is None or self.crash_manager is None:
            raise MembershipError(
                "eviction escalation needs a failure detector and crash manager"
            )
        after = self.policy.evict_after_ms if after_ms is None else after_ms
        previous = detector.on_suspect

        def hook(observer: int, subject: int, actually_down: bool) -> None:
            if previous is not None:
                previous(observer, subject, actually_down)
            self._note_suspicion(subject, actually_down, after)

        detector.on_suspect = hook

    def _note_suspicion(self, subject: int, actually_down: bool, after: float) -> None:
        if not actually_down or subject not in self.view:
            return
        if subject in self._evict_pending or subject in self.departed:
            return
        mgr = self.crash_manager
        if mgr is None or subject not in mgr.down_forever():
            return  # a recovery is scheduled; let crash recovery handle it
        self._evict_pending.add(subject)
        self.sim.schedule(
            after,
            lambda: self._maybe_evict(subject),
            label="membership-evict-check",
        )

    def _maybe_evict(self, subject: int) -> None:
        self._evict_pending.discard(subject)
        if subject in self.departed or subject not in self.view:
            return
        mgr = self.crash_manager
        if mgr is None or subject not in mgr.down_forever():
            return  # it recovered (or a recovery got scheduled) meanwhile
        self.request_evict(subject)

    # ------------------------------------------------------------------
    # fence machinery (event-driven mode)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self._active is not None:
            return
        while self._queue:
            change = self._queue.popleft()
            action = self._preflight(change)
            if action == "drop":
                self.stats.skipped_changes += 1
                continue
            if action == "retry":
                self.sim.schedule(
                    self.policy.retry_ms,
                    lambda c=change: self._requeue(c),
                    label="membership-retry",
                )
                continue
            self._active = change
            self._fence_started = self.sim.now
            self.stats.fences += 1
            self._hold_all(exclude=self._fence_exclude(change))
            self._poll_fence()
            return

    def _requeue(self, change: _PendingChange) -> None:
        self._queue.append(change)
        self._pump()

    def _preflight(self, change: _PendingChange) -> str:
        """Decide whether a queued change can start: run | drop | retry."""
        if change.first_attempt_ms is None:
            change.first_attempt_ms = self.sim.now
        if change.kind == "join":
            return "run"
        site = change.site
        if site is None or site >= self.view.capacity or site < 0:
            self.stats.skipped_changes += 1
            raise UnknownSiteError(int(site) if site is not None else -1,
                                   self.view.capacity)
        if site in self.departed:
            return "drop"
        mgr = self.crash_manager
        down = mgr is not None and site in mgr.down
        if change.kind == "leave":
            if down:
                if mgr is not None and site in mgr.down_forever():
                    # a crash-stopped leaver cannot drain; escalate
                    change.kind = "evict"
                    self._evict_pending.add(site)
                    return "run"
                if self.sim.now - change.first_attempt_ms > self.policy.max_fence_ms:
                    return "drop"
                return "retry"  # recovering; retry once it is back
            return "run"
        if change.kind == "evict":
            if not down:
                self._evict_pending.discard(site)
                return "drop"  # it came back; no eviction needed
            return "run"
        raise MembershipError(f"unknown change kind {change.kind!r}")

    def _fence_exclude(self, change: _PendingChange) -> frozenset:
        if change.kind == "evict" and change.site is not None:
            return frozenset((change.site,))
        return frozenset()

    def _poll_fence(self) -> None:
        change = self._active
        if change is None:  # pragma: no cover - defensive
            return
        exclude = self._fence_exclude(change)
        if self._drained(exclude):
            self._complete(change)
            return
        if self.sim.now - self._fence_started > self.policy.max_fence_ms:
            blockers = ", ".join(self._drain_blockers(exclude)) or "unknown"
            raise MembershipError(
                f"view-change fence for {change.kind} of site {change.site} "
                f"did not drain within {self.policy.max_fence_ms}ms: {blockers}"
            )
        self.sim.schedule(
            self.policy.poll_interval_ms, self._poll_fence, label="view-fence-poll"
        )

    def _complete(self, change: _PendingChange) -> None:
        self._mutate(change)
        self._release_all()
        self._active = None
        if self.crash_manager is not None:
            # a joiner brings new work; ticks may have gone quiescent
            self.crash_manager.wake()
        self._pump()

    # ------------------------------------------------------------------
    # synchronous entry point (interactive cluster)
    # ------------------------------------------------------------------
    def run_change(self, kind: str, site: Optional[int] = None) -> View:
        """Fence, drain, and apply one view change by stepping the
        simulator inline.  Used by the interactive cluster facade."""
        if self._active is not None:
            raise MembershipError("a view change is already in progress")
        change = _PendingChange(kind, site)
        action = self._preflight(change)
        if action == "drop":
            self.stats.skipped_changes += 1
            raise DepartedSiteError(site, self.membership_status(site)) \
                if site in self.departed else \
                MembershipError(f"{kind} of site {site} is not applicable")
        if action == "retry":
            raise MembershipError(
                f"cannot {kind} site {site}: it is down but scheduled to "
                f"recover; recover it first or evict it"
            )
        exclude = self._fence_exclude(change)
        self._hold_all(exclude=exclude)
        deadline = self.sim.now + self.policy.max_fence_ms
        try:
            while not self._drained(exclude):
                if self.sim.now > deadline or not self.sim.step():
                    blockers = ", ".join(self._drain_blockers(exclude)) or "unknown"
                    raise MembershipError(
                        f"cannot drain in-flight work for {kind} of site "
                        f"{site}: {blockers}"
                    )
            view = self._mutate(change)
        finally:
            self._release_all()
        return view

    # ------------------------------------------------------------------
    # fence: hold/release + drain predicate
    # ------------------------------------------------------------------
    def _hold_all(self, exclude: frozenset = frozenset()) -> None:
        if self.sites is None:
            return
        for m in self.view.members:
            if m in exclude or m >= len(self.sites):
                continue
            site = self.sites[m]
            if site is not None:
                site.hold()

    def _release_all(self) -> None:
        if self.sites is None:
            return
        for m in self.view.members:
            if m >= len(self.sites):
                continue
            site = self.sites[m]
            if site is not None:
                site.release()

    def _drain_blockers(self, exclude: frozenset = frozenset()) -> list[str]:
        """Human-readable list of what is keeping the fence open.

        Outstanding remote-read fetches are deliberately *not* part of
        the predicate: a fetch aimed at a crash-stopped site can never
        complete, and waiting on it would deadlock the fence.  Clock
        merges are dimension-tolerant, so a fetch reply crossing an
        epoch boundary is safe.
        """
        blockers: list[str] = []
        net = self.network
        inflight = net.app_messages_in_flight
        if inflight:
            blockers.append(f"{inflight} app message(s) in flight")
        mgr = self.crash_manager
        down = set(mgr.down) if mgr is not None else set()
        gone = down | set(self.departed) | set(exclude)
        for m in self.view.members:
            if m in gone:
                continue
            held = net.held_for(m)
            if held:
                blockers.append(f"{held} message(s) held for paused site {m}")
        transport = net.transport
        if transport is not None:
            unacked = transport.unacked_between_live(gone)
            if unacked:
                blockers.append(f"{unacked} unacked packet(s) between live members")
        for m in self.view.members:
            if m in gone:
                continue
            buffered = self.protocols[m].buffered_count
            if buffered:
                blockers.append(f"site {m} has {buffered} buffered message(s)")
        return blockers

    def _drained(self, exclude: frozenset = frozenset()) -> bool:
        return not self._drain_blockers(exclude)

    # ------------------------------------------------------------------
    # mutations (run at a drained fence)
    # ------------------------------------------------------------------
    def _mutate(self, change: _PendingChange) -> View:
        if change.kind == "join":
            view = self._do_join()
        elif change.kind == "leave":
            view = self._do_leave(change.site)
        elif change.kind == "evict":
            view = self._do_evict(change.site)
        else:  # pragma: no cover - guarded by _preflight
            raise MembershipError(f"unknown change kind {change.kind!r}")
        self.stats.epoch_log.append((self.sim.now, view))
        registry = self.registry
        if registry is not None:
            registry.inc("membership_epochs_total",
                         help_text="view epochs installed")
            registry.inc("membership_changes_total",
                         help_text="applied view changes by kind",
                         kind=change.kind)
            registry.set_gauge("membership_members", len(view.members),
                               help_text="members in the current view")
            registry.set_gauge("membership_epoch", view.epoch,
                               help_text="current view epoch number")
        return view

    def _live_members(self) -> list[int]:
        mgr = self.crash_manager
        down = mgr.down if mgr is not None else ()
        return [m for m in self.view.members if m not in down]

    def _announce(self, view: View, *, skip: frozenset = frozenset()) -> None:
        """Grow/remap every live member's protocol metadata.  Down
        members are grown later, by crash recovery, right after their
        checkpoint is restored (see CrashRecoveryManager.recover)."""
        mgr = self.crash_manager
        down = mgr.down if mgr is not None else ()
        for m in view.members:
            if m in down or m in skip:
                continue
            self.protocols[m].on_view_change(view)

    def _do_join(self) -> View:
        full_mode = self.placement.is_full
        donor_id: Optional[int] = None
        if full_mode:
            live = self._live_members()
            if not live:
                raise MembershipError("join impossible: no live member to donate state")
            donor_id = min(live)

        new_id = self.placement.add_site(replicate_all=full_mode)
        assert new_id == self.view.capacity
        self.network.add_site()

        view = View(
            epoch=self.view.epoch + 1,
            members=self.view.members + (new_id,),
            capacity=new_id + 1,
        )
        # grow the existing live members first so a donor snapshot is
        # already in the new dimension
        self._announce(view, skip=frozenset((new_id,)))

        proto = self.protocol_factory(new_id)
        self.protocols.append(proto)
        self.network.register(new_id, proto.on_message)

        mgr = self.crash_manager
        if mgr is not None:
            mgr.adopt_site(proto)

        # --- PR-3 bootstrap pipeline: checkpoint restore -> WAL replay ---
        if donor_id is not None:
            state = self.protocols[donor_id].snapshot()
        else:
            state = proto.snapshot()  # fresh, empty replica set
        durability = self.durability
        if durability is not None:
            disk = durability.add_site(proto, state, self.sim.now)
            proto.restore(disk.checkpoint)
            proto.replay(disk.wal)  # empty at bootstrap; shape parity with recovery
        else:
            proto.restore(state)
        if donor_id is not None:
            # the snapshot carries the donor's writer identity; the
            # joiner must start counting its own writes from zero
            proto.reset_writer_identity(new_id)
        proto.on_view_change(view)

        self.view = view
        self.stats.joins += 1

        detector = self.detector
        if detector is not None:
            detector.add_member(new_id)

        if self.site_factory is not None and self.sites is not None:
            site = self.site_factory(new_id, proto)
            self.sites.append(site)
            if mgr is not None:
                mgr.sites.append(site)
            site.start()
        return view

    def _solely_held(self, victim: int) -> list[int]:
        out = []
        for var in self.placement.vars_at(victim):
            if len(self.placement.replicas(var)) == 1:
                out.append(var)
        return out

    def _successor(self, victim: int, members) -> int:
        cap = self.view.capacity
        return min(members, key=lambda m: ((m - victim) % cap, m))

    def _retire_common(self, victim: int, status: str, view: View) -> None:
        """Shared teardown after the membership structures are updated."""
        net = self.network
        net.retire_site(victim)
        if net.transport is not None:
            net.transport.forget_site(victim)
        detector = self.detector
        if detector is not None:
            detector.remove_member(victim)
        mgr = self.crash_manager
        if mgr is not None:
            mgr.retire_site(victim)
        if self.sites is not None and victim < len(self.sites):
            site = self.sites[victim]
            if site is not None:
                site.retire()
        proto = self.protocols[victim]
        proto.mark_departed()
        self.departed[victim] = (status, view.epoch)

    def _do_leave(self, victim: int) -> View:
        members = [m for m in self.view.members if m != victim]
        if not members:
            raise MembershipError(f"site {victim} is the last member; cannot leave")
        live_rest = [m for m in self._live_members() if m != victim]
        if not live_rest:
            raise MembershipError(
                f"leave of site {victim} would leave no live member to hand off to"
            )
        victim_proto = self.protocols[victim]

        handoff: dict[int, int] = {}
        for var in self._solely_held(victim):
            succ = self._successor(victim, live_rest)
            handoff[var] = succ
            slot = victim_proto.ctx.store.read(var)
            succ_proto = self.protocols[succ]
            succ_proto.ctx.store.adopt(
                var, slot.value, slot.write_id, slot.applied_at
            )
            meta = victim_proto.last_write_on.get(var)
            if meta is not None:
                succ_proto.last_write_on[var] = meta
            self.stats.handoffs += 1

        self.placement.remove_site(victim, handoff)
        view = View(
            epoch=self.view.epoch + 1, members=tuple(members),
            capacity=self.view.capacity,
        )
        self._announce(view)
        self._retire_common(victim, "left", view)
        self.view = view
        self.stats.leaves += 1
        return view

    def _do_evict(self, victim: int) -> View:
        members = [m for m in self.view.members if m != victim]
        if not members:
            raise MembershipError(f"site {victim} is the last member; cannot evict")
        live_rest = [m for m in self._live_members() if m != victim]
        if not live_rest:
            raise MembershipError(
                f"evicting site {victim} would leave no live member"
            )

        handoff: dict[int, int] = {}
        for var in self._solely_held(victim):
            # the victim is crash-stopped: its state is unreachable, so
            # the variable degrades to |bot| at the successor
            succ = self._successor(victim, live_rest)
            handoff[var] = succ
            self.protocols[succ].ctx.store.adopt(var, None, None, self.sim.now)
            self.stats.lost_variables += 1

        self.placement.remove_site(victim, handoff)
        view = View(
            epoch=self.view.epoch + 1, members=tuple(members),
            capacity=self.view.capacity,
        )
        self._announce(view)
        self._retire_common(victim, "evicted", view)
        self._evict_pending.discard(victim)
        self.view = view
        self.stats.evictions += 1
        return view
