"""Operation schedules — the paper's pre-planned event schedules.

Section IV-C: "All the processes in the system are symmetric and
generate operation events (write event or read event) according to a
event schedule planned in advance.  The event schedule is randomly
generated.  The time interval between two events is given from 5ms to
2005ms."

A :class:`Workload` is one such plan: per site, a list of
(planned time, operation) pairs.  Schedules are pure data — generation
lives in :mod:`repro.workload.generator`, execution in
:mod:`repro.sim.process` — so the same workload can be replayed against
every protocol (exactly how the paper compares Opt-Track against
Opt-Track-CRP "running the same operation event scheduling" in Table IV).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["OpKind", "Operation", "SiteSchedule", "Workload"]


class OpKind(enum.Enum):
    WRITE = "w"
    READ = "r"


@dataclass(frozen=True, slots=True)
class Operation:
    """One application operation: w(x_var)value or r(x_var)."""

    kind: OpKind
    var: int
    value: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is OpKind.WRITE and self.value is None:
            raise ValueError("write operations need a value")
        if self.kind is OpKind.READ and self.value is not None:
            raise ValueError("read operations take no value")

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE


@dataclass(frozen=True, slots=True)
class SiteSchedule:
    """The timed operation list of one application process."""

    site: int
    items: tuple[tuple[float, Operation], ...]

    def __post_init__(self) -> None:
        last = -1.0
        for t, _ in self.items:
            if t < 0:
                raise ValueError("operation times must be non-negative")
            if t < last:
                raise ValueError("schedule times must be non-decreasing")
            last = t

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[tuple[float, Operation]]:
        return iter(self.items)

    @property
    def write_count(self) -> int:
        return sum(1 for _, op in self.items if op.is_write)

    @property
    def read_count(self) -> int:
        return len(self.items) - self.write_count


@dataclass(frozen=True)
class Workload:
    """A complete pre-planned run: one schedule per site."""

    schedules: tuple[SiteSchedule, ...]
    n_vars: int
    #: the write-rate parameter the generator targeted (actual rates vary
    #: by sampling; see :meth:`actual_write_rate`)
    target_write_rate: float = field(default=0.0)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        for i, sched in enumerate(self.schedules):
            if sched.site != i:
                raise ValueError(f"schedule {i} labelled with site {sched.site}")
            for _, op in sched.items:
                if not 0 <= op.var < self.n_vars:
                    raise ValueError(f"operation touches var {op.var} >= q={self.n_vars}")

    @property
    def n_sites(self) -> int:
        return len(self.schedules)

    @property
    def total_operations(self) -> int:
        return sum(len(s) for s in self.schedules)

    @property
    def total_writes(self) -> int:
        return sum(s.write_count for s in self.schedules)

    @property
    def total_reads(self) -> int:
        return sum(s.read_count for s in self.schedules)

    def actual_write_rate(self) -> float:
        """w / (w + r) as realized by the sampled schedule."""
        total = self.total_operations
        return self.total_writes / total if total else 0.0

    def for_site(self, site: int) -> SiteSchedule:
        return self.schedules[site]
