"""Trace export and replay.

Two kinds of artifacts can be round-tripped as JSON:

* **workloads** — the pre-planned operation schedules, so a run can be
  reproduced exactly on another machine (or fed to a different protocol,
  Table IV-style) without sharing RNG internals;
* **histories** — the recorded event trace of a run, so causal
  consistency can be re-checked offline and failures can be archived as
  regression fixtures.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..sim.events import EventRecord
from ..verify.history import HistoryRecorder
from .schedule import Operation, OpKind, SiteSchedule, Workload

__all__ = [
    "workload_to_dict",
    "workload_from_dict",
    "save_workload",
    "load_workload",
    "save_history",
    "load_history",
]

PathLike = Union[str, Path]


def workload_to_dict(workload: Workload) -> dict:
    """JSON-ready representation of a workload."""
    return {
        "n_vars": workload.n_vars,
        "target_write_rate": workload.target_write_rate,
        "seed": workload.seed,
        "schedules": [
            {
                "site": sched.site,
                "items": [
                    [t, op.kind.value, op.var, op.value] for t, op in sched.items
                ],
            }
            for sched in workload.schedules
        ],
    }


def workload_from_dict(data: dict) -> Workload:
    """Inverse of :func:`workload_to_dict`."""
    schedules = []
    for sched in data["schedules"]:
        items = []
        for t, kind, var, value in sched["items"]:
            op = Operation(OpKind(kind), int(var),
                           int(value) if value is not None else None)
            items.append((float(t), op))
        schedules.append(SiteSchedule(site=int(sched["site"]), items=tuple(items)))
    return Workload(
        schedules=tuple(schedules),
        n_vars=int(data["n_vars"]),
        target_write_rate=float(data.get("target_write_rate", 0.0)),
        seed=data.get("seed"),
    )


def save_workload(workload: Workload, path: PathLike) -> None:
    Path(path).write_text(json.dumps(workload_to_dict(workload)))


def load_workload(path: PathLike) -> Workload:
    return workload_from_dict(json.loads(Path(path).read_text()))


def save_history(history: HistoryRecorder, path: PathLike) -> None:
    """Write a recorded history as JSON lines (one event per line)."""
    with open(path, "w") as fh:
        for ev in history.events:
            fh.write(json.dumps(ev.as_dict()))
            fh.write("\n")


def load_history(path: PathLike) -> HistoryRecorder:
    """Read a history previously written by :func:`save_history`."""
    rec = HistoryRecorder(enabled=True)
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rec.events.append(EventRecord.from_dict(json.loads(line)))
    return rec
