"""Random workload generation matching the paper's benchmark setup.

Defaults reproduce Section IV/V: 600 operations per process, inter-event
gaps uniform in [5, 2005] ms, q = 100 variables chosen uniformly, write
probability ``w_rate``.  Everything is seeded through one
``numpy.random.SeedSequence`` so a workload is a pure function of its
parameters — the property the paper relies on when running the *same*
schedule through different protocols (Table IV), and the property our
regression tests rely on for exact expectations.

Write values encode their origin (site and per-site sequence number), so
any value observed anywhere in a run can be traced back to the write
that produced it even without the write-id plumbing.

Beyond the paper's uniform variable choice, a Zipf-skewed distribution
is available (``var_distribution="zipf"``): realistic stores see heavily
skewed popularity, which concentrates ``LastWriteOn`` churn on a few hot
variables — the skew ablation bench measures what that does to log and
message sizes.
"""

from __future__ import annotations


import numpy as np

from .schedule import Operation, OpKind, SiteSchedule, Workload

__all__ = [
    "WorkloadParams",
    "generate_workload",
    "variable_probabilities",
    "encode_value",
    "decode_value",
]

#: paper defaults
PAPER_OPS_PER_PROCESS = 600
PAPER_GAP_RANGE_MS = (5.0, 2005.0)
PAPER_N_VARS = 100

_VALUE_BASE = 1 << 32


def encode_value(site: int, seq: int) -> int:
    """Pack (site, per-site write sequence) into one traceable int."""
    if site < 0 or seq < 0:
        raise ValueError("site and seq must be non-negative")
    return site * _VALUE_BASE + seq


def decode_value(value: int) -> tuple[int, int]:
    """Inverse of :func:`encode_value`."""
    if value < 0:
        raise ValueError("encoded values are non-negative")
    return divmod(value, _VALUE_BASE)


class WorkloadParams:
    """Validated parameter bundle for :func:`generate_workload`."""

    def __init__(
        self,
        n_sites: int,
        *,
        n_vars: int = PAPER_N_VARS,
        write_rate: float = 0.5,
        ops_per_process: int = PAPER_OPS_PER_PROCESS,
        gap_range_ms: tuple[float, float] = PAPER_GAP_RANGE_MS,
        seed: int = 0,
        var_distribution: str = "uniform",
        zipf_s: float = 1.1,
    ) -> None:
        if n_sites <= 0:
            raise ValueError("need at least one site")
        if n_vars <= 0:
            raise ValueError("need at least one variable")
        if not 0.0 <= write_rate <= 1.0:
            raise ValueError("write rate must be in [0, 1]")
        if ops_per_process <= 0:
            raise ValueError("need at least one operation per process")
        lo, hi = gap_range_ms
        if not 0 <= lo <= hi:
            raise ValueError(f"bad gap range {gap_range_ms}")
        if var_distribution not in ("uniform", "zipf"):
            raise ValueError(f"unknown variable distribution {var_distribution!r}")
        if zipf_s <= 0:
            raise ValueError("zipf exponent must be positive")
        self.var_distribution = var_distribution
        self.zipf_s = zipf_s
        self.n_sites = n_sites
        self.n_vars = n_vars
        self.write_rate = write_rate
        self.ops_per_process = ops_per_process
        self.gap_range_ms = (float(lo), float(hi))
        self.seed = seed


def variable_probabilities(n_vars: int, distribution: str, zipf_s: float) -> np.ndarray:
    """Per-variable selection probabilities for a distribution spec.

    ``uniform`` is the paper's setting; ``zipf`` makes variable k's
    popularity proportional to 1/(k+1)^s (variable 0 is the hottest).
    """
    if distribution == "uniform":
        return np.full(n_vars, 1.0 / n_vars)
    weights = 1.0 / np.power(np.arange(1, n_vars + 1, dtype=float), zipf_s)
    return weights / weights.sum()


def generate_workload(
    n_sites: int,
    *,
    n_vars: int = PAPER_N_VARS,
    write_rate: float = 0.5,
    ops_per_process: int = PAPER_OPS_PER_PROCESS,
    gap_range_ms: tuple[float, float] = PAPER_GAP_RANGE_MS,
    seed: int = 0,
    var_distribution: str = "uniform",
    zipf_s: float = 1.1,
) -> Workload:
    """Generate the paper's random event schedule for every site.

    Each site gets an independent RNG stream spawned from ``seed``, so
    schedules are stable under changes to *other* sites' parameters and
    identical workloads can be regenerated from (params, seed) alone.
    """
    params = WorkloadParams(
        n_sites,
        n_vars=n_vars,
        write_rate=write_rate,
        ops_per_process=ops_per_process,
        gap_range_ms=gap_range_ms,
        seed=seed,
        var_distribution=var_distribution,
        zipf_s=zipf_s,
    )
    probabilities = variable_probabilities(
        params.n_vars, params.var_distribution, params.zipf_s
    )
    streams = np.random.SeedSequence(params.seed).spawn(params.n_sites)
    schedules = []
    for site in range(params.n_sites):
        rng = np.random.default_rng(streams[site])
        gaps = rng.uniform(*params.gap_range_ms, size=params.ops_per_process)
        times = np.cumsum(gaps)
        variables = rng.choice(
            params.n_vars, size=params.ops_per_process, p=probabilities
        )
        is_write = rng.random(params.ops_per_process) < params.write_rate
        items = []
        write_seq = 0
        for k in range(params.ops_per_process):
            if is_write[k]:
                write_seq += 1
                op = Operation(OpKind.WRITE, int(variables[k]),
                               encode_value(site, write_seq))
            else:
                op = Operation(OpKind.READ, int(variables[k]))
            items.append((float(times[k]), op))
        schedules.append(SiteSchedule(site=site, items=tuple(items)))
    return Workload(
        schedules=tuple(schedules),
        n_vars=params.n_vars,
        target_write_rate=params.write_rate,
        seed=params.seed,
    )
