"""Workload generation: the paper's pre-planned operation schedules."""

from .generator import (
    PAPER_GAP_RANGE_MS,
    PAPER_N_VARS,
    PAPER_OPS_PER_PROCESS,
    WorkloadParams,
    decode_value,
    encode_value,
    generate_workload,
)
from .schedule import Operation, OpKind, SiteSchedule, Workload

__all__ = [
    "Operation",
    "OpKind",
    "SiteSchedule",
    "Workload",
    "WorkloadParams",
    "generate_workload",
    "encode_value",
    "decode_value",
    "PAPER_OPS_PER_PROCESS",
    "PAPER_GAP_RANGE_MS",
    "PAPER_N_VARS",
]
