"""Replica placement: which sites hold which variables.

The shared memory Q has q variables; each is replicated at p of the n
sites (the *replication factor*).  The paper assumes variables are
"evenly replicated on all the sites" so that each site stores pq/n
variables on average and a read misses its local replica set with
probability (n-p)/n.  ``RoundRobinPlacement`` realizes that assumption
exactly; random and hash placements are provided for sensitivity studies.

A placement also fixes, per (variable, reader) pair, the *predesignated*
replica contacted by ``RemoteFetch`` (Section II-B): we pick the replica
closest to the reader in ring distance, which is deterministic and spreads
fetch load evenly under round-robin placement.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

__all__ = [
    "Placement",
    "RoundRobinPlacement",
    "RandomPlacement",
    "HashPlacement",
    "full_replication",
    "paper_replication_factor",
]


def paper_replication_factor(n: int, fraction: float = 0.3) -> int:
    """The paper's partial-replication factor p = 0.3 * n, rounded, >= 1.

    Rounding matches the paper's own data: e.g. at n=5 the reported
    message counts fit p=2 (= round(1.5)), not p=1.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    return max(1, min(n, round(fraction * n)))


class Placement(abc.ABC):
    """Mapping of variables to replica site sets, plus fetch routing."""

    def __init__(self, n_sites: int, n_vars: int, replication_factor: int) -> None:
        if n_sites <= 0:
            raise ValueError("need at least one site")
        if n_vars <= 0:
            raise ValueError("need at least one variable")
        if not 1 <= replication_factor <= n_sites:
            raise ValueError(
                f"replication factor {replication_factor} outside [1, {n_sites}]"
            )
        self.n_sites = n_sites
        self.n_vars = n_vars
        self.replication_factor = replication_factor
        self._replicas: list[tuple[int, ...]] = [
            tuple(sorted(self._compute_replicas(v))) for v in range(n_vars)
        ]
        for v, reps in enumerate(self._replicas):
            if len(reps) != replication_factor or len(set(reps)) != replication_factor:
                raise ValueError(f"placement produced bad replica set for var {v}: {reps}")
        self._vars_at: list[tuple[int, ...]] = [
            tuple(v for v in range(n_vars) if s in self._replicas[v])
            for s in range(n_sites)
        ]
        self._replica_sets: list[frozenset[int]] = [
            frozenset(reps) for reps in self._replicas
        ]
        #: fixed at construction: full-replication protocols keep their
        #: p = n contract across view changes (joiners replicate
        #: everything), so this is a *mode*, not a live p == n check.
        self._full_mode = replication_factor == n_sites

    @abc.abstractmethod
    def _compute_replicas(self, var: int) -> Iterable[int]:
        """Return the replica site set for ``var`` (exactly p distinct sites)."""

    # ------------------------------------------------------------------
    def replicas(self, var: int) -> tuple[int, ...]:
        """Sites replicating ``var`` (sorted, length = replication factor)."""
        return self._replicas[var]

    def replica_set(self, var: int) -> frozenset[int]:
        """Replica sites of ``var`` as an interned frozenset.

        The write/apply hot paths consume destination *sets*; sharing one
        frozenset per variable avoids re-freezing the same tuple on
        every write and every SM apply.
        """
        return self._replica_sets[var]

    def vars_at(self, site: int) -> tuple[int, ...]:
        """Variables locally replicated at ``site`` (the paper's X_i)."""
        return self._vars_at[site]

    def is_replicated_at(self, var: int, site: int) -> bool:
        """True when ``site`` holds a replica of ``var``."""
        return site in self._replicas[var]

    def fetch_site(self, var: int, reader: int) -> int:
        """Predesignated replica serving ``reader``'s remote reads of ``var``.

        Chooses the replica with minimal clockwise ring distance from the
        reader; deterministic, and the identity replica when the reader
        itself holds the variable.
        """
        reps = self._replicas[var]
        if reader in reps:
            return reader
        return min(reps, key=lambda s: ((s - reader) % self.n_sites, s))

    @property
    def is_full(self) -> bool:
        """True when every variable is replicated at every member (p = n).

        Under elastic membership this reports the placement's *mode*
        (fixed at construction): a full-replication placement stays full
        across joins (the joiner replicates everything) and leaves (the
        survivors still each hold every variable).
        """
        return self._full_mode

    # ------------------------------------------------------------------
    # elastic membership (see repro.sim.membership)
    # ------------------------------------------------------------------
    def add_site(self, *, replicate_all: bool) -> int:
        """Grow the site id space by one; returns the new site's id.

        ``replicate_all`` (full-replication mode) gives the joiner a
        replica of every variable; otherwise the joiner starts with an
        empty replica set and serves reads remotely.
        """
        site = self.n_sites
        self.n_sites += 1
        if replicate_all:
            self._replicas = [reps + (site,) for reps in self._replicas]
            self._replica_sets = [frozenset(reps) for reps in self._replicas]
            self._vars_at.append(tuple(range(self.n_vars)))
            self.replication_factor += 1
        else:
            self._vars_at.append(())
        return site

    def remove_site(self, site: int, handoff: dict[int, int]) -> None:
        """Remove ``site`` from every replica set.

        ``handoff`` maps each variable *solely* replicated at ``site``
        to the member adopting its replica; every solely-held variable
        must appear in it (the membership layer computes the map).
        """
        new_replicas: list[tuple[int, ...]] = []
        for var, reps in enumerate(self._replicas):
            if site not in reps:
                new_replicas.append(reps)
                continue
            rest = tuple(s for s in reps if s != site)
            if not rest:
                rest = (handoff[var],)
            new_replicas.append(tuple(sorted(rest)))
        self._replicas = new_replicas
        self._replica_sets = [frozenset(reps) for reps in new_replicas]
        self._vars_at = [
            tuple(v for v in range(self.n_vars) if s in self._replicas[v])
            for s in range(self.n_sites)
        ]
        self.replication_factor = min(len(reps) for reps in new_replicas)

    def load_balance(self) -> np.ndarray:
        """Replica count hosted per site, for balance assertions in tests."""
        counts = np.zeros(self.n_sites, dtype=np.int64)
        for reps in self._replicas:
            for s in reps:
                counts[s] += 1
        return counts


class RoundRobinPlacement(Placement):
    """Variable v lives at sites {v, v+1, ..., v+p-1} (mod n).

    This is the canonical "evenly replicated" layout: every site hosts
    either floor(pq/n) or ceil(pq/n) variables.
    """

    def _compute_replicas(self, var: int) -> Iterable[int]:
        return [(var + t) % self.n_sites for t in range(self.replication_factor)]


class RandomPlacement(Placement):
    """Each variable's replica set is a uniform random p-subset of sites."""

    def __init__(
        self,
        n_sites: int,
        n_vars: int,
        replication_factor: int,
        *,
        seed: int = 0,
    ) -> None:
        self._rng = np.random.default_rng(seed)
        super().__init__(n_sites, n_vars, replication_factor)

    def _compute_replicas(self, var: int) -> Iterable[int]:
        return self._rng.choice(self.n_sites, size=self.replication_factor, replace=False)


class HashPlacement(Placement):
    """Deterministic pseudo-random placement from a hash of the var id.

    Unlike :class:`RandomPlacement` this needs no RNG state, so two
    independently constructed placements with the same parameters agree —
    handy when sites are built in separate components.
    """

    def _compute_replicas(self, var: int) -> Iterable[int]:
        # Simple multiplicative hash walk over the ring; collisions skipped.
        chosen: list[int] = []
        x = (var * 2654435761 + 0x9E3779B9) % (2**32)
        while len(chosen) < self.replication_factor:
            x = (x * 6364136223846793005 + 1442695040888963407) % (2**64)
            s = x % self.n_sites
            if s not in chosen:
                chosen.append(int(s))
        return chosen


def full_replication(n_sites: int, n_vars: int) -> RoundRobinPlacement:
    """Placement with p = n: every site replicates every variable."""
    return RoundRobinPlacement(n_sites, n_vars, n_sites)
