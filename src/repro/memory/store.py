"""Per-site variable store for the distributed shared memory.

Each site holds local replicas of a subset of the q variables.  A stored
value is tagged with the :class:`WriteId` of the write that produced it,
so the execution trace can reconstruct the read-from order exactly — the
verifier needs to know *which* write a read returned, not just the value
(values may repeat across writes).

The initial value of every variable is |bot| (represented as ``None``
with ``write_id`` ``None``), per the memory model of Ahamad et al.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["WriteId", "StoredValue", "SiteStore", "BOTTOM"]


#: Sentinel for the initial value of every variable.
BOTTOM = None


@dataclass(frozen=True, slots=True, order=True)
class WriteId:
    """Globally unique write identity: (writer site, writer local clock).

    Local clocks count that site's write operations from 1, so write ids
    are totally ordered per writer and unique system-wide.
    """

    site: int
    clock: int

    def as_tuple(self) -> tuple[int, int]:
        return (self.site, self.clock)


@dataclass(slots=True)
class StoredValue:
    """A replica slot: current value plus provenance."""

    value: object = BOTTOM
    write_id: Optional[WriteId] = None
    applied_at: float = 0.0


class SiteStore:
    """The local replicas hosted by one site.

    Only variables in the site's replica set may be read or written here;
    touching a non-replicated variable raises ``KeyError`` — protocol bugs
    where a multicast reaches a non-replica must fail loudly.
    """

    def __init__(self, site: int, replicated_vars: Iterable[int]) -> None:
        self.site = site
        self._slots: dict[int, StoredValue] = {v: StoredValue() for v in replicated_vars}

    def __contains__(self, var: int) -> bool:
        return var in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def variables(self) -> tuple[int, ...]:
        return tuple(self._slots)

    def read(self, var: int) -> StoredValue:
        """Current slot for ``var`` (KeyError if not replicated here)."""
        try:
            return self._slots[var]
        except KeyError:
            raise KeyError(
                f"site {self.site} does not replicate variable {var}"
            ) from None

    def apply(self, var: int, value: object, write_id: WriteId, time: float) -> None:
        """Install a write's value into the local replica of ``var``."""
        slot = self.read(var)
        slot.value = value
        slot.write_id = write_id
        slot.applied_at = time

    def adopt(
        self,
        var: int,
        value: object,
        write_id: Optional[WriteId],
        applied_at: float,
    ) -> None:
        """Take ownership of a replica slot handed off by a departing site.

        Unlike :meth:`apply` this *creates* the slot: the adopter was not
        previously a replica of ``var``.  A ``None`` write_id installs
        |bot| (eviction of the sole replica loses the value).
        """
        self._slots[var] = StoredValue(
            value=value if write_id is not None else BOTTOM,
            write_id=write_id,
            applied_at=applied_at,
        )

    def drop(self, var: int) -> None:
        """Forget the local replica of ``var`` (membership remapping)."""
        self._slots.pop(var, None)
