"""Distributed shared memory: variables, replica placement, site stores."""

from .replication import (
    HashPlacement,
    Placement,
    RandomPlacement,
    RoundRobinPlacement,
    full_replication,
    paper_replication_factor,
)
from .store import BOTTOM, SiteStore, StoredValue, WriteId

__all__ = [
    "Placement",
    "RoundRobinPlacement",
    "RandomPlacement",
    "HashPlacement",
    "full_replication",
    "paper_replication_factor",
    "SiteStore",
    "StoredValue",
    "WriteId",
    "BOTTOM",
]
