"""``python -m repro`` entry point."""

import sys

from .cli import main

sys.exit(main())
