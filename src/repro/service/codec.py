"""Deterministic wire codec for the protocol message vocabulary.

The frozen dataclasses in :mod:`repro.core.messages` are the wire
contract of the live substrate.  Their field *order* used to be implicit
in ``__slots__`` declaration order; :data:`WIRE_FIELDS` makes it an
explicit registry — adding or reordering a field without updating the
registry (and the round-trip test) is now a loud failure instead of a
silent protocol break.

Encoding is canonical JSON (sorted keys, no whitespace, ASCII) over a
small tagged value algebra, so equal messages encode to equal bytes on
every platform:

* JSON scalars (``None``/bool/int/float/str) pass through — Python's
  ``repr``-based float serialization is shortest-round-trip, so
  timestamps survive exactly;
* project types are tagged objects: ``{"!": "wid", ...}`` for
  :class:`~repro.memory.store.WriteId`, ``mat``/``vec`` for the numpy
  clocks, ``pbe`` for :class:`~repro.core.log.PiggybackEntry`;
* containers: tuples are tagged (``t``) so decode restores them exactly,
  frozensets (``fs``) serialize sorted, plain lists/dicts pass through
  with dict keys required to be strings (client values arrive as JSON).

Frames on the socket are length-prefixed: a 4-byte big-endian payload
size followed by the canonical JSON bytes.  This module is pure
bytes-in/bytes-out — no sockets, no clocks — so the loopback substrate
can push every message through ``encode``/``decode`` in its data path
and the equivalence tests exercise the codec for free.
"""

from __future__ import annotations

import json
import struct
from typing import Callable

from ..core.log import PiggybackEntry
from ..core.clocks import MatrixClock, VectorClock
from ..core.messages import (
    CRPSM,
    FetchMessage,
    FullTrackRM,
    FullTrackSM,
    OptPSM,
    OptTrackRM,
    OptTrackSM,
)
from ..memory.store import WriteId

__all__ = [
    "WIRE_FIELDS",
    "CodecError",
    "MAX_FRAME_BYTES",
    "encode_message",
    "decode_message",
    "message_to_wire",
    "message_from_wire",
    "dumps",
    "loads",
    "pack_frame",
    "unpack_length",
]

#: The explicit wire contract: every sendable message type and the exact
#: field order it serializes in.  ``tests/test_service_codec.py`` asserts
#: this list matches each dataclass's declared fields and that every
#: type round-trips to a structurally-fingerprinted equal value.
WIRE_FIELDS: dict[type, tuple[str, ...]] = {
    FetchMessage: ("var", "reader", "request_id", "requirements"),
    FullTrackSM: ("var", "value", "write_id", "matrix", "issued_at"),
    FullTrackRM: ("var", "value", "write_id", "matrix", "request_id"),
    OptTrackSM: ("var", "value", "write_id", "log", "issued_at"),
    OptTrackRM: ("var", "value", "write_id", "log", "request_id"),
    CRPSM: ("var", "value", "write_id", "log", "issued_at"),
    OptPSM: ("var", "value", "write_id", "vector", "issued_at"),
}

_BY_NAME: dict[str, type] = {cls.__name__: cls for cls in WIRE_FIELDS}

#: refuse frames larger than this (64 MiB): a corrupt length prefix must
#: not allocate unbounded memory
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")

#: tag key: no client JSON object may use it (escaped on encode)
_TAG = "!"


class CodecError(ValueError):
    """A value cannot be encoded, or wire bytes cannot be decoded."""


# ----------------------------------------------------------------------
# value algebra
# ----------------------------------------------------------------------
def _to_wire(obj: object) -> object:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, WriteId):
        return {_TAG: "wid", "s": obj.site, "c": obj.clock}
    if isinstance(obj, MatrixClock):
        return {_TAG: "mat", "n": obj.n, "v": obj.m.tolist()}
    if isinstance(obj, VectorClock):
        return {_TAG: "vec", "n": obj.n, "v": obj.v.tolist()}
    if isinstance(obj, PiggybackEntry):
        return {_TAG: "pbe", "w": obj.writer, "c": obj.clock,
                "d": sorted(obj.dests)}
    if isinstance(obj, tuple):
        return {_TAG: "t", "v": [_to_wire(x) for x in obj]}
    if isinstance(obj, frozenset):
        return {_TAG: "fs", "v": sorted(obj)}
    if isinstance(obj, list):
        return [_to_wire(x) for x in obj]
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise CodecError(f"dict keys must be strings, got {k!r}")
            # escape a literal "!"-prefixed key so it can't fake a tag
            out[("!" + k) if k.startswith(_TAG) else k] = _to_wire(v)
        return out
    raise CodecError(f"cannot encode {type(obj).__name__} value {obj!r}")


def _from_wire(obj: object) -> object:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [_from_wire(x) for x in obj]
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag is None:
            return {
                (k[1:] if k.startswith(_TAG) else k): _from_wire(v)
                for k, v in obj.items()
            }
        if tag == "wid":
            return WriteId(int(obj["s"]), int(obj["c"]))
        if tag == "mat":
            return MatrixClock(int(obj["n"]), obj["v"])
        if tag == "vec":
            return VectorClock(int(obj["n"]), obj["v"])
        if tag == "pbe":
            return PiggybackEntry(int(obj["w"]), int(obj["c"]),
                                  frozenset(obj["d"]))
        if tag == "t":
            return tuple(_from_wire(x) for x in obj["v"])
        if tag == "fs":
            return frozenset(obj["v"])
        if tag == "msg":
            return message_from_wire(obj)
        raise CodecError(f"unknown wire tag {tag!r}")
    raise CodecError(f"cannot decode wire value {obj!r}")


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
def message_to_wire(message: object) -> dict:
    """The tagged-dict form of one sendable message (embeddable in frames)."""
    fields = WIRE_FIELDS.get(type(message))
    if fields is None:
        raise CodecError(
            f"{type(message).__name__} is not a registered wire type "
            f"(add it to WIRE_FIELDS)"
        )
    return {
        _TAG: "msg",
        "t": type(message).__name__,
        "f": [_to_wire(getattr(message, name)) for name in fields],
    }


def message_from_wire(data: dict) -> object:
    cls = _BY_NAME.get(data.get("t", ""))
    if cls is None:
        raise CodecError(f"unknown message type {data.get('t')!r}")
    fields = WIRE_FIELDS[cls]
    raw = data.get("f")
    if not isinstance(raw, list) or len(raw) != len(fields):
        raise CodecError(
            f"{cls.__name__} expects {len(fields)} fields, got {raw!r}"
        )
    return cls(**{name: _from_wire(v) for name, v in zip(fields, raw)})


def encode_message(message: object) -> bytes:
    """Canonical bytes of one message (no frame prefix)."""
    return dumps(message_to_wire(message))


def decode_message(data: bytes) -> object:
    obj = loads(data)
    if not isinstance(obj, dict) or obj.get(_TAG) != "msg":
        raise CodecError("bytes do not contain an encoded message")
    return message_from_wire(obj)


# ----------------------------------------------------------------------
# canonical JSON + framing
# ----------------------------------------------------------------------
def dumps(obj: object) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, ASCII only."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True,
        allow_nan=False,
    ).encode("ascii")


def loads(data: bytes) -> object:
    try:
        return json.loads(data)
    except json.JSONDecodeError as exc:
        raise CodecError(f"malformed frame payload: {exc}") from exc


def pack_frame(obj: object) -> bytes:
    """Length-prefixed canonical frame: 4-byte big-endian size + payload."""
    payload = dumps(obj)
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(payload)} bytes exceeds the cap")
    return _LEN.pack(len(payload)) + payload


def unpack_length(prefix: bytes) -> int:
    """Payload size from the 4-byte prefix, validated against the cap."""
    (size,) = _LEN.unpack(prefix)
    if size > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {size} exceeds the cap")
    return size


def decode_value(obj: object) -> object:
    """Public wrapper used by frames that embed message/value payloads."""
    return _from_wire(obj)


def encode_value(obj: object) -> object:
    """Public wrapper: the tagged wire form of any supported value."""
    return _to_wire(obj)


#: re-exported for callers that stream frames incrementally
read_frame_size: Callable[[bytes], int] = unpack_length
