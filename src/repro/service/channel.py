"""Reliable exactly-once FIFO delivery over (re)connectable byte links.

The live analogue of :mod:`repro.sim.reliable`: per-directed-channel
sequence numbers, cumulative acks, adaptive retransmission timers, and
an out-of-order reassembly buffer — implementing the
:class:`~repro.core.ports.Transport` port for the service substrate.

TCP already gives FIFO bytes *per connection*, but connections die: a
peer restart or transient disconnect silently drops everything buffered
in the kernel, and a reconnect may replay frames the receiver already
processed.  The seq/ack layer restores the channel guarantees the
protocol cores assume (no loss, no duplication, no reordering within a
channel) *across* connections — exactly the job the sim channel does
across injected faults.

Policy is shared verbatim with the simulator:
:class:`~repro.core.netpolicy.RetransmitPolicy` parameterizes windows,
backoff and shedding, and :class:`~repro.core.netpolicy.RtoEstimator`
runs the same Jacobson/Karels filter over *wall-clock* RTT samples that
the sim runs over simulated ones (Karn's rule included).  Timers come
from the injected :class:`~repro.core.ports.Scheduler`, so the identical
channel logic runs under asyncio (live node) or a
:class:`~repro.service.runtime.StepClock` (tests).
"""

from __future__ import annotations

from collections import deque
from random import Random
from typing import Callable, Optional

from ..core.netpolicy import OverloadError, RetransmitPolicy, RtoEstimator
from ..core.ports import Scheduler, TimerHandle
from .codec import message_from_wire, message_to_wire

__all__ = ["ServiceChannel", "ServiceTransport"]

#: frame schemas (canonical JSON objects, see repro.service.codec):
#:   {"k": "data", "src": i, "seq": n, "sz": float, "m": <wire message>}
#:   {"k": "ack",  "src": i, "cum": n}
#:   {"k": "hello", "src": i}
SendFrame = Callable[[int, dict], None]
Deliver = Callable[[int, object], None]


class ServiceChannel:
    """Sender + receiver state for one directed channel (src -> dst)."""

    def __init__(
        self,
        transport: "ServiceTransport",
        src: int,
        dst: int,
    ) -> None:
        self.transport = transport
        self.src = src
        self.dst = dst
        policy = transport.policy
        # sender side
        self.next_seq = 0
        self.unacked: dict[int, dict] = {}  # insertion-ordered by seq
        self._backlog: deque[dict] = deque()
        self.rto = policy.base_rto_ms
        self._timer: Optional[TimerHandle] = None
        self.retransmissions = 0
        self._est = RtoEstimator(policy)
        self._sent_at: dict[int, float] = {}
        self._retx: set[int] = set()
        self.consecutive_timeouts = 0
        # per-channel deterministic jitter stream (seeded by identity):
        # desynchronizes timers without an unseeded RNG effect
        self._jitter = Random(((src + 1) << 20) ^ (dst + 1))
        # receiver side
        self.next_expected = 0
        self._reorder: dict[int, dict] = {}
        self.duplicate_drops = 0
        self.reorder_overflows = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Packets queued durably at this sender (in flight + backlog)."""
        return len(self.unacked) + len(self._backlog)

    @property
    def srtt(self) -> Optional[float]:
        return self._est.srtt

    @property
    def rtt_samples(self) -> int:
        return self._est.samples

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(self, message: object, size_bytes: float) -> None:
        frame = {
            "k": "data",
            "src": self.src,
            "seq": self.next_seq,
            "sz": size_bytes,
            "m": message_to_wire(message),
        }
        self.next_seq += 1
        policy = self.transport.policy
        if len(self.unacked) >= policy.send_window:
            self._backlog.append(frame)
            return
        self._transmit(frame)
        self._arm_timer()

    def _transmit(self, frame: dict) -> None:
        seq = frame["seq"]
        self.unacked[seq] = frame
        self._sent_at[seq] = self.transport.scheduler.now
        self.transport.send_frame(self.dst, frame)

    def on_ack(self, cumulative: int) -> None:
        acked = [seq for seq in self.unacked if seq <= cumulative]
        if not acked:
            return
        policy = self.transport.policy
        now = self.transport.scheduler.now
        for seq in acked:
            del self.unacked[seq]
            sent = self._sent_at.pop(seq, None)
            if seq in self._retx:
                # Karn's rule: a retransmitted packet's ack is ambiguous
                self._retx.discard(seq)
            elif policy.adaptive and sent is not None:
                self._est.sample(now - sent)
        self.consecutive_timeouts = 0
        self.rto = self._est.fresh_rto()
        self._cancel_timer()
        while self._backlog and len(self.unacked) < policy.send_window:
            self._transmit(self._backlog.popleft())
        if self.unacked:
            self._arm_timer()

    def _arm_timer(self) -> None:
        if self._timer is not None:
            return
        policy = self.transport.policy
        delay = self.rto + self._jitter.uniform(0.0, policy.jitter_ms)
        self._timer = self.transport.scheduler.schedule(
            delay, self._on_timeout, label=f"retx:{self.src}->{self.dst}"
        )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if not self.unacked:
            return
        policy = self.transport.policy
        self.consecutive_timeouts += 1
        burst = list(self.unacked.values())[: policy.heal_burst]
        for frame in burst:
            seq = frame["seq"]
            self.retransmissions += 1
            self._retx.add(seq)
            self.transport.send_frame(self.dst, frame)
        self.rto = min(self.rto * policy.backoff, policy.max_rto_ms)
        self._arm_timer()

    def close(self) -> None:
        self._cancel_timer()

    # ------------------------------------------------------------------
    # receiver side (frames arriving *from* dst on the reverse channel
    # live in the dst->src ServiceChannel owned by the peer; this side
    # tracks what we have received from peer ``dst``)
    # ------------------------------------------------------------------
    def on_data(self, frame: dict) -> list[object]:
        """Accept one data frame from the peer; returns the in-order
        decoded messages now deliverable (possibly several, when the
        frame fills a reassembly gap).  Always (re-)acks."""
        seq = frame["seq"]
        out: list[object] = []
        if seq < self.next_expected:
            self.duplicate_drops += 1
        elif seq == self.next_expected:
            out.append(message_from_wire(frame["m"]))
            self.next_expected += 1
            while self.next_expected in self._reorder:
                buffered = self._reorder.pop(self.next_expected)
                out.append(message_from_wire(buffered["m"]))
                self.next_expected += 1
        else:
            if len(self._reorder) >= self.transport.policy.reorder_window:
                # overflow: drop; the sender's timer re-covers it
                self.reorder_overflows += 1
            else:
                self._reorder.setdefault(seq, frame)
        self.transport.send_frame(
            self.dst,
            {"k": "ack", "src": self.src, "cum": self.next_expected - 1},
        )
        return out


class ServiceTransport:
    """The :class:`~repro.core.ports.Transport` port over framed links.

    ``send_frame(dst, frame)`` is the injected raw egress — the asyncio
    node writes length-prefixed canonical JSON to the peer's socket (and
    silently drops while disconnected; retransmission covers the gap),
    the loopback substrate appends to an in-process queue.
    """

    def __init__(
        self,
        site: int,
        scheduler: Scheduler,
        send_frame: SendFrame,
        deliver: Deliver,
        *,
        policy: Optional[RetransmitPolicy] = None,
    ) -> None:
        self.site = site
        self.scheduler = scheduler
        self.send_frame = send_frame
        self.deliver = deliver
        self.policy = policy if policy is not None else RetransmitPolicy()
        self._channels: dict[int, ServiceChannel] = {}
        self.messages_sent = 0
        self.bytes_modelled = 0.0

    def channel(self, dst: int) -> ServiceChannel:
        ch = self._channels.get(dst)
        if ch is None:
            ch = ServiceChannel(self, self.site, dst)
            self._channels[dst] = ch
        return ch

    # ------------------------------------------------------------------
    # Transport port
    # ------------------------------------------------------------------
    def send(
        self, src: int, dst: int, message: object, *, size_bytes: float = 0.0
    ) -> Optional[float]:
        if src != self.site:
            raise ValueError(
                f"transport of site {self.site} asked to send as {src}"
            )
        self.messages_sent += 1
        self.bytes_modelled += size_bytes
        self.channel(dst).send(message, size_bytes)
        return None  # delivery time is the wire's business

    def overloaded(self, site: int) -> bool:
        return any(len(ch._backlog) > 0 for ch in self._channels.values())

    def check_overload_admission(self, site: int) -> None:
        shed = self.policy.shed_backlog
        if shed <= 0:
            return
        backlog = sum(ch.pending for ch in self._channels.values())
        if backlog > shed:
            raise OverloadError(site, backlog, shed)

    # ------------------------------------------------------------------
    # frame ingress (wired by the node)
    # ------------------------------------------------------------------
    def on_frame(self, frame: dict) -> None:
        kind = frame.get("k")
        src = frame.get("src")
        if not isinstance(src, int):
            return  # malformed peer frame: ignore, timers re-cover
        if kind == "data":
            for message in self.channel(src).on_data(frame):
                self.deliver(src, message)
        elif kind == "ack":
            self.channel(src).on_ack(frame["cum"])

    # ------------------------------------------------------------------
    def pending_total(self) -> int:
        """Unacked + backlogged packets across all outbound channels."""
        return sum(ch.pending for ch in self._channels.values())

    def close(self) -> None:
        for ch in self._channels.values():
            ch.close()
