"""Per-node JSONL histories and the merge the causal checker consumes.

Live nodes record exactly the events the simulator records — every
protocol interaction flows through the same
:class:`~repro.verify.history.HistoryRecorder` injected via
``ProtocolContext`` — and :class:`HistorySink` streams each new
:class:`~repro.sim.events.EventRecord` (a pure data vocabulary, see the
data-only port in ``layers.toml``) to an append-only JSONL file, one
``as_dict`` object per line.

:func:`merge_histories` concatenates per-node files *in site order* into
one recorder.  That is sufficient for
:func:`~repro.verify.causal_checker.check_causal_consistency`: the
checker derives program order and apply order per site (each node's file
preserves its own recording order) and the cross-site read-from relation
from write ids — it never compares raw timestamps across nodes, so the
unsynchronized per-node wall clocks are harmless.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from ..sim.events import EventRecord
from ..verify.history import HistoryRecorder

__all__ = [
    "HistorySink",
    "dump_events",
    "load_events",
    "merge_histories",
    "merge_event_lists",
]


class HistorySink:
    """Streams a recorder's new events to an append-only JSONL file.

    The recorder stays the single source of truth (checkers can read it
    in-process); the sink just mirrors increments to disk so the history
    survives the node and CI can upload it as an artifact.
    """

    def __init__(self, recorder: HistoryRecorder, path: "str | Path") -> None:
        self.recorder = recorder
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._flushed = 0
        self._fh = self.path.open("w", encoding="utf-8")

    def flush(self) -> int:
        """Write every not-yet-mirrored event; returns how many."""
        events = self.recorder.events
        new = events[self._flushed:]
        for event in new:
            self._fh.write(json.dumps(event.as_dict(), sort_keys=True))
            self._fh.write("\n")
        if new:
            self._fh.flush()
            self._flushed = len(events)
        return len(new)

    def close(self) -> None:
        self.flush()
        self._fh.close()


def dump_events(events: Iterable[EventRecord]) -> str:
    """The JSONL text of an event sequence (HTTP /history responses)."""
    return "".join(
        json.dumps(e.as_dict(), sort_keys=True) + "\n" for e in events
    )


def load_events(text: str) -> list[EventRecord]:
    """Parse JSONL history text (inverse of :func:`dump_events`)."""
    out = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            out.append(EventRecord.from_dict(json.loads(line)))
    return out


def merge_event_lists(
    per_site: Sequence[Sequence[EventRecord]],
) -> HistoryRecorder:
    """One recorder from per-node event lists, concatenated in site order."""
    merged = HistoryRecorder(enabled=True)
    for events in per_site:
        merged.extend(events)
    return merged


def merge_histories(paths: Sequence["str | Path"]) -> HistoryRecorder:
    """Load per-node JSONL files (given in site order) into one recorder."""
    return merge_event_lists(
        [load_events(Path(p).read_text(encoding="utf-8")) for p in paths]
    )
