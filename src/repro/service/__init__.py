"""Live service substrate: the protocol cores behind real sockets.

This package is the second implementation of the substrate ports in
:mod:`repro.core.ports` (the discrete-event simulator is the first).
The exact protocol objects that run under the simulator serve real
traffic here — nothing in :mod:`repro.core` changes, only the injected
seams do:

================  =============================  =========================
port              simulator substrate            service substrate
================  =============================  =========================
``Clock``         :class:`~repro.sim.engine.Simulator`  event-loop wall clock
``TimerService``  kernel event heap              ``loop.call_later``
``Transport``     :class:`~repro.sim.network.Network`   TCP + :mod:`~repro.service.channel`
``Durability``    :class:`~repro.sim.checkpoint.SiteDisk`  (not yet wired)
================  =============================  =========================

Modules:

* :mod:`~repro.service.codec` — deterministic length-prefixed wire
  format for every sendable message type (``WIRE_FIELDS``);
* :mod:`~repro.service.runtime` — wall ``Clock``/``TimerService`` over
  an asyncio loop, plus the deterministic :class:`StepClock` used by
  in-process tests;
* :mod:`~repro.service.channel` — reliable exactly-once FIFO channel
  over a (re)connectable byte stream, reusing the PR-8
  :class:`~repro.core.netpolicy.RetransmitPolicy` /
  :class:`~repro.core.netpolicy.RtoEstimator` policy objects;
* :mod:`~repro.service.node` — the substrate-independent
  :class:`NodeCore` plus the asyncio TCP node (one OS process per site);
* :mod:`~repro.service.api` — client-facing HTTP JSON GET/PUT/status;
* :mod:`~repro.service.bootstrap` — static cluster topology files;
* :mod:`~repro.service.loopback` — in-process loopback substrate for
  the sim/live equivalence tests (no sockets, no wall clock);
* :mod:`~repro.service.history` — per-node JSONL history streaming and
  the merge loader the causal checker consumes.

This is the only layer (outside the harness) permitted NETWORK and
WALL_CLOCK effects — ``layers.toml`` forbids ``socket``/``asyncio``
everywhere below, and the effect baseline records every use here.
"""

from .bootstrap import (
    ClusterTopology,
    NodeSpec,
    build_placement,
    default_topology,
    load_topology,
    save_topology,
)
from .codec import WIRE_FIELDS, decode_message, encode_message
from .loopback import LoopbackCluster
from .node import NodeCore

__all__ = [
    "ClusterTopology",
    "NodeSpec",
    "build_placement",
    "default_topology",
    "load_topology",
    "save_topology",
    "WIRE_FIELDS",
    "decode_message",
    "encode_message",
    "LoopbackCluster",
    "NodeCore",
]
