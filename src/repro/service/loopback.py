"""In-process service cluster: real service stack, no sockets, no time.

:class:`LoopbackCluster` wires N :class:`~repro.service.node.NodeCore`
instances together through the *actual* service machinery — every
message rides a :class:`~repro.service.channel.ServiceTransport`, is
encoded to canonical frame JSON and back by :mod:`repro.service.codec`,
and is paced by retransmission timers — but frames travel over an
in-process FIFO hub and timers fire from a shared deterministic
:class:`~repro.service.runtime.StepClock`.  The result is the live
substrate minus the two effects that make it nondeterministic (sockets
and wall time), which is exactly what the sim/live equivalence property
test needs: same seeded workload, both substrates, same causal history
verdict and same final stores.

The hub also serializes every frame through ``codec.dumps``/``loads``
before handing it to the receiving transport, so the codec sits in the
data path here just as it does on a real wire.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..core.netpolicy import RetransmitPolicy
from .bootstrap import ClusterTopology, build_placement
from .channel import ServiceTransport
from .codec import dumps, loads
from .node import NodeCore
from .runtime import StepClock

__all__ = ["LoopbackCluster"]


class LoopbackCluster:
    """N service node cores joined by an in-process frame hub."""

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        policy: Optional[RetransmitPolicy] = None,
    ) -> None:
        self.topology = topology
        self.clock = StepClock()
        self._queue: deque[tuple[int, bytes]] = deque()  # (dst, frame bytes)
        placement = build_placement(topology)
        if policy is None:
            policy = (
                RetransmitPolicy(**topology.retransmit)
                if topology.retransmit
                else RetransmitPolicy()
            )
        self.transports: list[ServiceTransport] = []
        self.nodes: list[NodeCore] = []
        for site in range(topology.n_sites):
            transport = ServiceTransport(
                site,
                self.clock,
                self._make_send_frame(site),
                self._make_deliver(site),
                policy=policy,
            )
            self.transports.append(transport)
            self.nodes.append(
                NodeCore(
                    site=site,
                    n_sites=topology.n_sites,
                    placement=placement,
                    protocol=topology.protocol,
                    clock=self.clock,
                    transport=transport,
                )
            )

    # ------------------------------------------------------------------
    # the "wire": FIFO byte frames between transports
    # ------------------------------------------------------------------
    def _make_send_frame(self, src: int):
        def send_frame(dst: int, frame: dict) -> None:
            # serialize NOW (sender-side state must not leak by reference)
            self._queue.append((dst, dumps(frame)))

        return send_frame

    def _make_deliver(self, site: int):
        def deliver(src: int, message: object) -> None:
            self.nodes[site].on_message(src, message)

        return deliver

    # ------------------------------------------------------------------
    # pumping
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Deliver every queued frame (and frames those deliveries send);
        returns how many frames moved."""
        moved = 0
        while self._queue:
            dst, payload = self._queue.popleft()
            self.transports[dst].on_frame(loads(payload))
            moved += 1
        return moved

    def settle(self, *, step_ms: float = 50.0, max_steps: int = 10_000) -> None:
        """Pump frames and advance timers until full quiescence."""
        for _ in range(max_steps):
            self.pump()
            if self.idle:
                return
            self.clock.advance(step_ms)
        raise RuntimeError("loopback cluster failed to quiesce")

    @property
    def idle(self) -> bool:
        return (
            not self._queue
            and all(t.pending_total() == 0 for t in self.transports)
            and all(n.protocol.pending_count == 0 for n in self.nodes)
        )

    # ------------------------------------------------------------------
    # application surface
    # ------------------------------------------------------------------
    def put(self, site: int, var: int, value: object):
        wid = self.nodes[site].put(var, value)
        self.pump()
        return wid

    def get(self, site: int, var: int):
        """Blocking read: pumps (advancing time if needed) until the
        causal read completes; returns (value, write_id, was_remote)."""
        result: list = []

        def _done(value, wid, remote):
            result.append((value, wid, remote))

        self.nodes[site].get(var, _done)
        for _ in range(10_000):
            if result:
                return result[0]
            self.pump()
            if not result:
                self.clock.advance(50.0)
        raise RuntimeError(f"read of x{var} at site {site} never completed")

    def histories(self):
        """Per-site event lists in site order (for the merge helper)."""
        return [node.history.events for node in self.nodes]
