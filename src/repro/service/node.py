"""A live causal KV node: the unmodified protocol core behind sockets.

Two halves, split along the port layer:

* :class:`NodeCore` is substrate-independent — it owns one
  :class:`~repro.core.base.CausalProtocol` instance plus its
  :class:`~repro.core.base.ProtocolContext` and exposes the application
  surface (``put``/``get``/``on_message``/``status``).  It receives a
  :class:`~repro.core.ports.Clock` and a
  :class:`~repro.core.ports.Transport` and never asks what they are:
  the loopback test cluster and the TCP node build the *same* core.
* :class:`ServiceNode` is the asyncio half: one OS process per site,
  a TCP listener for length-prefixed peer frames, persistent outbound
  connections (dialled with retry; the reliable channel's timers cover
  frames sent while a link is down), the HTTP client API from
  :mod:`repro.service.api`, and a streaming JSONL history sink.

Determinism note: protocol state mutates only inside loop callbacks
(HTTP handlers and frame ingress), and asyncio runs them one at a time —
the cores need no locks, exactly as in the simulator.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..core.base import CausalProtocol, ProtocolContext, create_protocol
from ..core.netpolicy import RetransmitPolicy
from ..core.ports import Clock, Transport
from ..memory.store import SiteStore, WriteId
from ..metrics.collector import MetricsCollector
from ..metrics.sizing import DEFAULT_SIZE_MODEL, SizeModel
from ..verify.history import HistoryRecorder
from .api import serve_http
from .bootstrap import ClusterTopology, build_placement
from .channel import ServiceTransport
from .codec import CodecError, loads, pack_frame, unpack_length
from .history import HistorySink
from .runtime import AsyncioScheduler

__all__ = ["NodeCore", "ServiceNode", "run_node"]

#: how long a node waits for a blocked remote read before giving up (ms)
READ_TIMEOUT_MS = 10_000.0
#: pause between outbound dial attempts while a peer is unreachable (s)
DIAL_RETRY_S = 0.25


class NodeCore:
    """One site's protocol instance over injected substrate ports."""

    def __init__(
        self,
        *,
        site: int,
        n_sites: int,
        placement,
        protocol: str,
        clock: Clock,
        transport: Transport,
        history: Optional[HistoryRecorder] = None,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
    ) -> None:
        self.site = site
        self.history = history if history is not None else HistoryRecorder()
        self.collector = MetricsCollector()
        self.collector.start_measuring()
        ctx = ProtocolContext(
            site=site,
            n_sites=n_sites,
            placement=placement,
            store=SiteStore(site, placement.vars_at(site)),
            network=transport,
            clock=clock,
            collector=self.collector,
            size_model=size_model,
            history=self.history,
        )
        self.ctx = ctx
        self.protocol: CausalProtocol = create_protocol(protocol, ctx)
        self.protocol_name = protocol
        self._op_counter = 0
        self.ops_completed = 0

    # ------------------------------------------------------------------
    def put(self, var: int, value: object) -> WriteId:
        """w(x_var)value — sheds with OverloadError past the backlog cap."""
        self.protocol.admit_put()
        self._op_counter += 1
        wid = self.protocol.write(var, value, op_index=self._op_counter)
        self.ops_completed += 1
        return wid

    def get(self, var: int, on_complete) -> None:
        """r(x_var) — ``on_complete(value, write_id, was_remote)`` fires
        immediately for replicated variables, or when the RM arrives for
        remote ones."""
        self._op_counter += 1

        def _done(value, wid, was_remote):
            self.ops_completed += 1
            on_complete(value, wid, was_remote)

        self.protocol.read(var, _done, op_index=self._op_counter)

    def on_message(self, src: int, message: object) -> None:
        self.protocol.on_message(src, message)

    # ------------------------------------------------------------------
    def status(self) -> dict:
        return {
            "site": self.site,
            "protocol": self.protocol_name,
            "n_sites": self.ctx.n_sites,
            "clock_ms": self.ctx.clock.now,
            "ops_completed": self.ops_completed,
            "pending_protocol": self.protocol.pending_count,
            "history_events": len(self.history),
        }


class ServiceNode:
    """The asyncio TCP process hosting one :class:`NodeCore`."""

    def __init__(self, topology: ClusterTopology, site: int) -> None:
        self.topology = topology
        self.site = site
        self.spec = topology.node(site)
        self.scheduler = AsyncioScheduler(asyncio.get_event_loop())
        policy = (
            RetransmitPolicy(**topology.retransmit)
            if topology.retransmit
            else RetransmitPolicy()
        )
        self.transport = ServiceTransport(
            site,
            self.scheduler,
            self._send_frame,
            self._deliver,
            policy=policy,
        )
        self.core = NodeCore(
            site=site,
            n_sites=topology.n_sites,
            placement=build_placement(topology),
            protocol=topology.protocol,
            clock=self.scheduler,
            transport=self.transport,
        )
        self._sink: Optional[HistorySink] = None
        path = topology.history_path(site)
        if path is not None:
            self._sink = HistorySink(self.core.history, path)
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._dialing: set[int] = set()
        self._servers: list[asyncio.base_events.Server] = []
        self._tasks: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # raw frame egress/ingress (the seam the reliable channel rides on)
    # ------------------------------------------------------------------
    def _send_frame(self, dst: int, frame: dict) -> None:
        writer = self._writers.get(dst)
        if writer is None or writer.is_closing():
            # no link: drop and (re)dial; the channel timer re-covers it
            self._ensure_dial(dst)
            return
        try:
            writer.write(pack_frame(frame))
        except ConnectionError:
            self._drop_writer(dst)

    def _deliver(self, src: int, message: object) -> None:
        self.core.on_message(src, message)
        self._flush_history()

    def _flush_history(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    # ------------------------------------------------------------------
    # outbound links
    # ------------------------------------------------------------------
    def _ensure_dial(self, dst: int) -> None:
        if dst in self._dialing or dst in self._writers or self._closed:
            return
        self._dialing.add(dst)
        self._spawn(self._dial(dst))

    async def _dial(self, dst: int) -> None:
        spec = self.topology.node(dst)
        try:
            while not self._closed:
                try:
                    _, writer = await asyncio.open_connection(
                        spec.host, spec.peer_port
                    )
                except OSError:
                    await asyncio.sleep(DIAL_RETRY_S)
                    continue
                writer.write(pack_frame({"k": "hello", "src": self.site}))
                self._writers[dst] = writer
                return
        finally:
            self._dialing.discard(dst)

    def _drop_writer(self, dst: int) -> None:
        writer = self._writers.pop(dst, None)
        if writer is not None:
            writer.close()

    # ------------------------------------------------------------------
    # inbound links
    # ------------------------------------------------------------------
    async def _handle_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                prefix = await reader.readexactly(4)
                payload = await reader.readexactly(unpack_length(prefix))
                frame = loads(payload)
                if isinstance(frame, dict) and frame.get("k") != "hello":
                    self.transport.on_frame(frame)
        except (asyncio.IncompleteReadError, ConnectionError, CodecError):
            pass
        finally:
            writer.close()

    # ------------------------------------------------------------------
    # application surface used by the HTTP API
    # ------------------------------------------------------------------
    def put(self, var: int, value: object) -> WriteId:
        wid = self.core.put(var, value)
        self._flush_history()
        return wid

    async def get(self, var: int) -> tuple[object, Optional[WriteId], bool]:
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()

        def _done(value, wid, was_remote):
            if not future.done():
                future.set_result((value, wid, was_remote))

        self.core.get(var, _done)
        try:
            result = await asyncio.wait_for(future, READ_TIMEOUT_MS / 1000.0)
        finally:
            self._flush_history()
        return result

    def status(self) -> dict:
        out = self.core.status()
        out["pending_channel"] = self.transport.pending_total()
        out["peer_links"] = sorted(self._writers)
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, coro) -> None:
        task = asyncio.get_event_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def start(self) -> None:
        self._servers.append(
            await asyncio.start_server(
                self._handle_peer, self.spec.host, self.spec.peer_port
            )
        )
        self._servers.append(
            await serve_http(self, self.spec.host, self.spec.http_port)
        )
        for dst in range(self.topology.n_sites):
            if dst != self.site:
                self._ensure_dial(dst)

    async def run_forever(self) -> None:
        await self.start()
        try:
            await asyncio.Event().wait()  # cancelled from outside
        finally:
            await self.close()

    async def close(self) -> None:
        self._closed = True
        for server in self._servers:
            server.close()
        for task in list(self._tasks):
            task.cancel()
        for writer in self._writers.values():
            writer.close()
        self.transport.close()
        if self._sink is not None:
            self._sink.close()


def run_node(topology: ClusterTopology, site: int) -> None:
    """Blocking entry point for one node process (``repro _node``)."""

    async def _main() -> None:
        node = ServiceNode(topology, site)
        await node.run_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
