"""Minimal HTTP/1.1 JSON API for a live node, over asyncio streams.

Hand-rolled on purpose: the container ships no HTTP framework and the
surface is four routes, so a small request parser over
``asyncio.start_server`` keeps the node dependency-free.  Every response
closes the connection (``Connection: close``) — load generators open a
fresh connection per request, which doubles as a crude fairness valve.

Routes::

    GET  /status        node + transport counters (JSON)
    GET  /history       the node's event history (JSONL text)
    GET  /kv/<var>      r(x_var); blocks until the causal read completes
    PUT  /kv/<var>      w(x_var)value; body {"value": <json>}

Examples::

    curl http://127.0.0.1:7503/status
    curl -X PUT -d '{"value": 41}' http://127.0.0.1:7503/kv/0
    curl http://127.0.0.1:7504/kv/0

PUT returns 503 with ``{"error": "overloaded"}`` when admission control
sheds the write (the paper's overload regime, PR 8), and GET returns 504
if a remote read's RM never arrives within the node's read timeout.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Optional

from ..core.netpolicy import OverloadError
from .history import dump_events

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import ServiceNode

__all__ = ["serve_http"]

#: refuse request bodies larger than this (1 MiB)
MAX_BODY_BYTES = 1024 * 1024


def _response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
) -> bytes:
    reason = {
        200: "OK", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 500: "Internal Server Error",
        503: "Service Unavailable", 504: "Gateway Timeout",
    }.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: dict) -> bytes:
    return _response(
        status, (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    )


def _wid_dict(write_id) -> Optional[dict]:
    if write_id is None:
        return None
    return {"site": write_id.site, "clock": write_id.clock}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[tuple[str, str, bytes]]:
    """Parse one request; returns (method, path, body) or None on EOF."""
    try:
        request_line = await reader.readline()
    except ConnectionError:
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = 0
    if content_length > MAX_BODY_BYTES:
        raise ValueError(f"request body of {content_length} bytes too large")
    body = (
        await reader.readexactly(content_length) if content_length else b""
    )
    return method, path, body


async def _handle(node: "ServiceNode", method: str, path: str,
                  body: bytes) -> bytes:
    if path == "/status":
        if method != "GET":
            return _json_response(405, {"error": "method not allowed"})
        return _json_response(200, node.status())

    if path == "/history":
        if method != "GET":
            return _json_response(405, {"error": "method not allowed"})
        return _response(
            200,
            dump_events(node.core.history.events).encode("utf-8"),
            content_type="application/x-ndjson",
        )

    if path.startswith("/kv/"):
        try:
            var = int(path[len("/kv/"):])
        except ValueError:
            return _json_response(400, {"error": f"bad variable in {path!r}"})
        if not 0 <= var < node.topology.n_vars:
            return _json_response(404, {"error": f"no variable {var}"})

        if method == "GET":
            try:
                value, write_id, remote = await node.get(var)
            except asyncio.TimeoutError:
                return _json_response(
                    504, {"error": "read timed out", "var": var}
                )
            return _json_response(200, {
                "var": var, "value": value,
                "write_id": _wid_dict(write_id), "remote": remote,
            })

        if method == "PUT":
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                return _json_response(400, {"error": "body is not JSON"})
            if not isinstance(payload, dict) or "value" not in payload:
                return _json_response(
                    400, {"error": 'body must be {"value": <json>}'}
                )
            try:
                wid = node.put(var, payload["value"])
            except OverloadError as exc:
                return _json_response(503, {
                    "error": "overloaded", "var": var,
                    "backlog": exc.backlog, "threshold": exc.threshold,
                })
            return _json_response(200, {
                "var": var, "value": payload["value"],
                "write_id": _wid_dict(wid),
            })

        return _json_response(405, {"error": "method not allowed"})

    return _json_response(404, {"error": f"no route {path!r}"})


async def serve_http(
    node: "ServiceNode", host: str, port: int
) -> asyncio.base_events.Server:
    """Start the API listener; returns the asyncio server handle."""

    async def _client(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_request(reader)
            if request is not None:
                method, path, body = request
                try:
                    writer.write(await _handle(node, method, path, body))
                except Exception as exc:  # surface, don't kill the node
                    writer.write(_json_response(500, {"error": str(exc)}))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            writer.close()

    return await asyncio.start_server(_client, host, port)
