"""Static cluster bootstrap: topology files for the live substrate.

A topology file is a small JSON document describing one static cluster —
who the sites are, where they listen, and the placement/protocol
parameters every node must agree on::

    {
      "protocol": "opt-track",
      "n_vars": 16,
      "replication_factor": 2,
      "placement": "round-robin",
      "seed": 0,
      "history_dir": "/tmp/live-history",
      "nodes": [
        {"site": 0, "host": "127.0.0.1", "peer_port": 7400, "http_port": 7500},
        {"site": 1, "host": "127.0.0.1", "peer_port": 7401, "http_port": 7501},
        {"site": 2, "host": "127.0.0.1", "peer_port": 7402, "http_port": 7502}
      ]
    }

Every node process loads the same file and derives identical placement
(the deterministic placement classes in :mod:`repro.memory.replication`
guarantee agreement), so bootstrap needs no coordination protocol —
matching the paper's static-membership system model (Section IV).
``repro serve`` generates a topology (picking free ports when asked) and
``repro loadgen`` reads it back to find the cluster.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..core.base import get_protocol_class
from ..memory.replication import (
    HashPlacement,
    Placement,
    RandomPlacement,
    RoundRobinPlacement,
    full_replication,
    paper_replication_factor,
)

__all__ = [
    "NodeSpec",
    "ClusterTopology",
    "build_placement",
    "load_topology",
    "save_topology",
    "default_topology",
]

_PLACEMENTS = {
    "round-robin": RoundRobinPlacement,
    "hash": HashPlacement,
}


@dataclass(frozen=True)
class NodeSpec:
    """Where one site lives: peer (inter-node) and HTTP (client) endpoints."""

    site: int
    host: str
    peer_port: int
    http_port: int

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "host": self.host,
            "peer_port": self.peer_port,
            "http_port": self.http_port,
        }


@dataclass(frozen=True)
class ClusterTopology:
    """One static cluster: agreed parameters plus the node endpoints."""

    protocol: str
    n_vars: int
    nodes: tuple[NodeSpec, ...]
    replication_factor: Optional[int] = None
    placement: str = "round-robin"
    seed: int = 0
    history_dir: Optional[str] = None
    retransmit: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        get_protocol_class(self.protocol)  # KeyError on unknown name
        if self.n_vars <= 0:
            raise ValueError("need at least one variable")
        if not self.nodes:
            raise ValueError("topology declares no nodes")
        sites = [n.site for n in self.nodes]
        if sites != list(range(len(self.nodes))):
            raise ValueError(
                f"node sites must be exactly 0..{len(self.nodes) - 1} "
                f"in order, got {sites}"
            )
        if self.placement not in (*_PLACEMENTS, "random"):
            raise ValueError(f"unknown placement {self.placement!r}")

    @property
    def n_sites(self) -> int:
        return len(self.nodes)

    def node(self, site: int) -> NodeSpec:
        return self.nodes[site]

    def history_path(self, site: int) -> Optional[Path]:
        if self.history_dir is None:
            return None
        return Path(self.history_dir) / f"node-{site}.history.jsonl"

    def as_dict(self) -> dict:
        out = {
            "protocol": self.protocol,
            "n_vars": self.n_vars,
            "replication_factor": self.replication_factor,
            "placement": self.placement,
            "seed": self.seed,
            "history_dir": self.history_dir,
            "nodes": [n.as_dict() for n in self.nodes],
        }
        if self.retransmit:
            out["retransmit"] = dict(self.retransmit)
        return out


def build_placement(topology: ClusterTopology) -> Placement:
    """The placement every node derives identically from the topology.

    Mirrors :func:`repro.experiments.runner.build_placement` semantics:
    full-replication protocols force p = n; otherwise an absent
    ``replication_factor`` defaults to the paper's 30% rule.
    """
    n, q = topology.n_sites, topology.n_vars
    if get_protocol_class(topology.protocol).full_replication:
        return full_replication(n, q)
    p = topology.replication_factor
    if p is None:
        p = paper_replication_factor(n)
    if topology.placement == "random":
        return RandomPlacement(n, q, p, seed=topology.seed)
    return _PLACEMENTS[topology.placement](n, q, p)


# ----------------------------------------------------------------------
def load_topology(path: "str | Path") -> ClusterTopology:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    nodes = tuple(
        NodeSpec(
            site=int(n["site"]),
            host=str(n["host"]),
            peer_port=int(n["peer_port"]),
            http_port=int(n["http_port"]),
        )
        for n in data["nodes"]
    )
    return ClusterTopology(
        protocol=str(data["protocol"]),
        n_vars=int(data["n_vars"]),
        nodes=nodes,
        replication_factor=(
            int(data["replication_factor"])
            if data.get("replication_factor") is not None
            else None
        ),
        placement=str(data.get("placement", "round-robin")),
        seed=int(data.get("seed", 0)),
        history_dir=data.get("history_dir"),
        retransmit=dict(data.get("retransmit", {})),
    )


def save_topology(topology: ClusterTopology, path: "str | Path") -> None:
    Path(path).write_text(
        json.dumps(topology.as_dict(), indent=2) + "\n", encoding="utf-8"
    )


def default_topology(
    n_sites: int,
    *,
    protocol: str = "opt-track",
    n_vars: int = 16,
    replication_factor: Optional[int] = None,
    placement: str = "round-robin",
    seed: int = 0,
    host: str = "127.0.0.1",
    base_port: int = 7400,
    history_dir: Optional[str] = None,
) -> ClusterTopology:
    """A local loopback cluster: peer ports then HTTP ports, contiguous."""
    nodes = tuple(
        NodeSpec(
            site=i,
            host=host,
            peer_port=base_port + i,
            http_port=base_port + n_sites + i,
        )
        for i in range(n_sites)
    )
    return ClusterTopology(
        protocol=protocol,
        n_vars=n_vars,
        nodes=nodes,
        replication_factor=replication_factor,
        placement=placement,
        seed=seed,
        history_dir=history_dir,
    )
