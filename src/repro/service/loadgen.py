"""Seeded concurrent load generator for a live cluster.

Drives N HTTP clients — one per site, so each site stays a *sequential
application process* (program order is a premise of causal memory,
paper Section II) — concurrently against the cluster's API ports.
The op mix is seeded and single-writer-per-variable: site ``i`` writes
only variables ``v`` with ``v % n == i``.  Causal consistency says
nothing about which of two *concurrent* writes to the same variable
wins, so cross-substrate convergence comparisons are only meaningful
when each variable has one writer; reads may target any variable.

After the op phase the driver polls ``/status`` until every node
reports zero pending protocol work and zero pending channel packets
(quiescence), downloads each node's ``/history``, merges them in site
order, and runs the offline causal checker — the same
:func:`~repro.verify.causal_checker.check_causal_consistency` the
simulator's histories go through.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from random import Random
from typing import Optional

from ..verify.causal_checker import check_causal_consistency
from .bootstrap import ClusterTopology, build_placement
from .history import load_events, merge_event_lists

__all__ = ["LoadgenReport", "run_loadgen", "http_request"]

#: how long to keep polling for quiescence before declaring failure (s)
SETTLE_TIMEOUT_S = 30.0


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes] = None,
) -> tuple[int, bytes]:
    """One HTTP/1.1 request over a fresh connection; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = body if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii") + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    header, _, rest = raw.partition(b"\r\n\r\n")
    status_line = header.split(b"\r\n", 1)[0].split()
    if len(status_line) < 2:
        raise ConnectionError(f"malformed HTTP response: {raw[:80]!r}")
    return int(status_line[1]), rest


@dataclass
class LoadgenReport:
    """What one loadgen run did and whether the history checked out."""

    ops_attempted: int = 0
    writes: int = 0
    reads: int = 0
    shed: int = 0          # 503 overload responses (admission control)
    errors: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    events: int = 0
    quiesced: bool = False

    @property
    def ok(self) -> bool:
        return self.quiesced and not self.errors and not self.violations

    def as_dict(self) -> dict:
        return {
            "ops_attempted": self.ops_attempted,
            "writes": self.writes,
            "reads": self.reads,
            "shed": self.shed,
            "errors": list(self.errors),
            "violations": [str(v) for v in self.violations],
            "events": self.events,
            "quiesced": self.quiesced,
            "ok": self.ok,
        }


def _site_plan(
    topology: ClusterTopology, site: int, ops: int, seed: int,
    write_fraction: float,
) -> list[tuple[str, int, object]]:
    """The seeded op sequence for one site: (kind, var, value) triples."""
    rng = Random((seed * 1_000_003) ^ (site + 1))
    n, q = topology.n_sites, topology.n_vars
    owned = [v for v in range(q) if v % n == site]
    plan: list[tuple[str, int, object]] = []
    for k in range(ops):
        if owned and rng.random() < write_fraction:
            var = rng.choice(owned)
            plan.append(("w", var, f"s{site}k{k}"))
        else:
            plan.append(("r", rng.randrange(q), None))
    return plan


async def _drive_site(
    topology: ClusterTopology, site: int, ops: int, seed: int,
    write_fraction: float, report: LoadgenReport,
) -> None:
    spec = topology.node(site)
    for kind, var, value in _site_plan(
        topology, site, ops, seed, write_fraction
    ):
        report.ops_attempted += 1
        try:
            if kind == "w":
                status, _ = await http_request(
                    spec.host, spec.http_port, "PUT", f"/kv/{var}",
                    json.dumps({"value": value}).encode("utf-8"),
                )
                if status == 503:
                    report.shed += 1
                elif status != 200:
                    report.errors.append(
                        f"site {site}: PUT /kv/{var} -> {status}"
                    )
                else:
                    report.writes += 1
            else:
                status, _ = await http_request(
                    spec.host, spec.http_port, "GET", f"/kv/{var}"
                )
                if status != 200:
                    report.errors.append(
                        f"site {site}: GET /kv/{var} -> {status}"
                    )
                else:
                    report.reads += 1
        except (ConnectionError, OSError) as exc:
            report.errors.append(f"site {site}: {kind} x{var}: {exc}")
            return  # a dead site cannot preserve program order; stop it


async def _await_quiescence(topology: ClusterTopology) -> bool:
    """Poll /status until all nodes are drained twice in a row."""
    loop = asyncio.get_event_loop()
    deadline = loop.time() + SETTLE_TIMEOUT_S
    stable = 0
    while loop.time() < deadline:
        try:
            idle = True
            for spec in topology.nodes:
                status, body = await http_request(
                    spec.host, spec.http_port, "GET", "/status"
                )
                data = json.loads(body)
                if (status != 200 or data.get("pending_protocol", 1)
                        or data.get("pending_channel", 1)):
                    idle = False
                    break
            stable = stable + 1 if idle else 0
            if stable >= 2:
                return True
        except (ConnectionError, OSError, json.JSONDecodeError):
            stable = 0
        await asyncio.sleep(0.1)
    return False


async def _run(
    topology: ClusterTopology, *, ops: int, seed: int, write_fraction: float,
) -> LoadgenReport:
    report = LoadgenReport()
    await asyncio.gather(*(
        _drive_site(topology, site, ops, seed, write_fraction, report)
        for site in range(topology.n_sites)
    ))
    report.quiesced = await _await_quiescence(topology)
    if not report.quiesced:
        report.errors.append("cluster failed to quiesce")
        return report
    per_site = []
    for spec in topology.nodes:
        status, body = await http_request(
            spec.host, spec.http_port, "GET", "/history"
        )
        if status != 200:
            report.errors.append(f"site {spec.site}: /history -> {status}")
            return report
        per_site.append(load_events(body.decode("utf-8")))
    merged = merge_event_lists(per_site)
    report.events = len(merged)
    check = check_causal_consistency(merged, build_placement(topology))
    report.violations = list(check.violations)
    return report


def run_loadgen(
    topology: ClusterTopology,
    *,
    ops: int = 50,
    seed: int = 1,
    write_fraction: float = 0.5,
) -> LoadgenReport:
    """Blocking wrapper: drive the cluster, settle, verify the history."""
    return asyncio.run(
        _run(topology, ops=ops, seed=seed, write_fraction=write_fraction)
    )
