"""Clock and timer implementations for the live substrate.

:class:`AsyncioScheduler` satisfies the :class:`~repro.core.ports.Scheduler`
port over a running asyncio loop: ``now`` is the loop's monotonic time
rebased to node start and scaled to milliseconds (the unit every port
consumer — protocols, channels, history records — already speaks), and
``schedule`` wraps ``loop.call_later``.  This module is the sanctioned
home of the service layer's WALL_CLOCK effect; the static effect
analyzer recognizes ``loop.time``/``loop.call_later`` as wall-clock
leaves, so a stray import below this layer trips the purity gate.

:class:`StepClock` is the deterministic twin used by in-process tests:
a manually advanced clock with the same ``schedule`` surface, so channel
and node logic can be exercised without real time or sockets.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Callable, Optional

__all__ = ["AsyncioScheduler", "AsyncioTimer", "StepClock", "StepTimer"]


class AsyncioTimer:
    """:class:`~repro.core.ports.TimerHandle` over ``loop.call_later``."""

    __slots__ = ("_handle",)

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()


class AsyncioScheduler:
    """Wall :class:`~repro.core.ports.Clock` + ``TimerService`` over asyncio.

    The epoch is construction time, so ``now`` starts near 0 like the
    simulator's — timestamps in live histories are "ms since node start".
    """

    __slots__ = ("_loop", "_origin")

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._origin = self._loop.time()

    @property
    def now(self) -> float:
        """Milliseconds since node start (wall time)."""
        return (self._loop.time() - self._origin) * 1000.0

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> AsyncioTimer:
        """Run ``callback`` ``delay`` ms from now on the loop."""
        return AsyncioTimer(
            self._loop.call_later(max(delay, 0.0) / 1000.0, callback)
        )


class StepTimer:
    """A cancellable pending :class:`StepClock` timer."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int,
                 callback: Callable[[], None]) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "StepTimer") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class StepClock:
    """Deterministic manual scheduler: the test-side ``Scheduler`` port.

    Time only moves when the test calls :meth:`advance` (firing due
    timers in (deadline, arm-order) order) or :meth:`tick`.  No wall
    clock, no event loop — loopback clusters stay bit-reproducible.
    """

    __slots__ = ("_now", "_heap", "_seq")

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[StepTimer] = []
        self._seq = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> StepTimer:
        timer = StepTimer(self._now + max(delay, 0.0), self._seq, callback)
        self._seq += 1
        # simcheck: ignore[SIM007] -- StepClock IS a scheduler: its own (when, seq) tie-break mirrors the engine's
        heapq.heappush(self._heap, timer)
        return timer

    def tick(self, delta: float = 1.0) -> None:
        """Move time forward without firing timers (loopback op spacing)."""
        if delta < 0:
            raise ValueError("time cannot move backwards")
        self._now += delta

    def advance(self, delta: float) -> int:
        """Run ``delta`` ms forward, firing every timer that comes due.

        Returns the number of callbacks fired.
        """
        if delta < 0:
            raise ValueError("time cannot move backwards")
        deadline = self._now + delta
        fired = 0
        while self._heap and self._heap[0].when <= deadline:
            # simcheck: ignore[SIM007] -- see schedule(): StepTimer orders by (when, seq)
            timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = max(self._now, timer.when)
            timer.callback()
            fired += 1
        self._now = deadline
        return fired

    @property
    def pending_timers(self) -> int:
        return sum(1 for t in self._heap if not t.cancelled)
