"""Tests for the protocol framework: registry, drain loop, metered sends."""

import numpy as np
import pytest

from repro import ConstantLatency
from repro.core.base import (
    CausalProtocol,
    ProtocolContext,
    create_protocol,
    get_protocol_class,
    protocol_names,
    register_protocol,
)
from repro.core.opt_track import OptTrackNoPruneProtocol, OptTrackProtocol
from repro.memory.replication import RoundRobinPlacement, full_replication
from repro.memory.store import SiteStore
from repro.metrics.collector import MessageKind, MetricsCollector
from repro.metrics.sizing import DEFAULT_SIZE_MODEL
from repro.sim.engine import Simulator
from repro.sim.network import Network


def make_ctx(site=0, n=3, placement=None):
    placement = placement or full_replication(n, 4)
    sim = Simulator()
    net = Network(sim, n, ConstantLatency(5.0))
    return ProtocolContext(
        site=site, n_sites=n, placement=placement,
        store=SiteStore(site, placement.vars_at(site)),
        network=net, clock=sim, collector=MetricsCollector(),
        size_model=DEFAULT_SIZE_MODEL,
    )


class TestRegistry:
    def test_all_protocols_registered(self):
        names = protocol_names()
        for expected in ("full-track", "opt-track", "opt-track-crp", "optp",
                         "opt-track-noprune"):
            assert expected in names

    def test_create_by_name(self):
        proto = create_protocol("optp", make_ctx())
        assert proto.name == "optp"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            get_protocol_class("nope")

    def test_duplicate_registration_rejected(self):
        class Fake(CausalProtocol):  # pragma: no cover - never instantiated
            name = "optp"

            def write(self, var, value, *, op_index=None): ...
            def _local_read(self, var): ...
            def _serve_fetch(self, src, message): ...
            def _is_rm(self, message): ...
            def _sm_ready(self, src, message): ...
            def _apply_sm(self, src, message): ...

        with pytest.raises(ValueError, match="duplicate"):
            register_protocol(Fake)

    def test_noprune_variant_flags(self):
        assert OptTrackNoPruneProtocol.prune_on_send is False
        assert OptTrackProtocol.prune_on_send is True
        assert issubclass(OptTrackNoPruneProtocol, OptTrackProtocol)


class TestConstruction:
    def test_full_replication_protocol_rejects_partial_placement(self):
        placement = RoundRobinPlacement(3, 4, 1)
        with pytest.raises(ValueError, match="full replication"):
            create_protocol("optp", make_ctx(placement=placement))

    def test_partial_protocol_accepts_any_placement(self):
        placement = RoundRobinPlacement(3, 4, 1)
        proto = create_protocol("opt-track", make_ctx(placement=placement))
        assert proto.pending_count == 0

    def test_repr(self):
        proto = create_protocol("optp", make_ctx())
        assert "site=0" in repr(proto)


class TestDrainLoop:
    def test_out_of_order_buffering_and_fixpoint(self):
        """Deliver three causally chained CRP updates in reverse order:
        the drain loop must buffer then apply all of them in one cascade."""
        from repro.core.messages import CRPSM
        from repro.memory.store import WriteId

        ctx = make_ctx(site=1, n=3)
        proto = create_protocol("opt-track-crp", ctx)
        m1 = CRPSM(var=0, value="a", write_id=WriteId(0, 1), log=())
        m2 = CRPSM(var=0, value="b", write_id=WriteId(0, 2), log=((0, 1),))
        m3 = CRPSM(var=0, value="c", write_id=WriteId(0, 3), log=((0, 2),))
        proto.on_message(0, m3)
        assert proto.pending_count == 1   # blocked: FIFO gap
        proto.on_message(0, m2)
        assert proto.pending_count == 2   # still blocked on m1
        proto.on_message(0, m1)
        assert proto.pending_count == 0   # cascade applied everything
        assert ctx.store.read(0).value == "c"
        assert proto.applied == [3, 0, 0]

    def test_activation_delay_recorded_only_when_buffered(self):
        from repro.core.messages import CRPSM
        from repro.memory.store import WriteId

        ctx = make_ctx(site=1, n=3)
        ctx.collector.start_measuring()
        proto = create_protocol("opt-track-crp", ctx)
        # applicable immediately: no delay sample
        proto.on_message(0, CRPSM(var=0, value="a", write_id=WriteId(0, 1), log=()))
        assert ctx.collector.activation_delays.count == 0
        # blocked message that unblocks later at a later sim time
        proto.on_message(0, CRPSM(var=0, value="c", write_id=WriteId(0, 3), log=()))
        ctx.clock.schedule(10.0, lambda: proto.on_message(
            0, CRPSM(var=0, value="b", write_id=WriteId(0, 2), log=())
        ))
        ctx.clock.run()
        assert ctx.collector.activation_delays.count == 1
        assert ctx.collector.activation_delays.mean == pytest.approx(10.0)

    def test_send_records_metrics(self):
        ctx = make_ctx(site=0, n=3)
        ctx.collector.start_measuring()
        proto = create_protocol("optp", ctx)
        # receivers needed for delivery
        ctx.network.register(1, lambda s, m: None)
        ctx.network.register(2, lambda s, m: None)
        proto.write(0, "v")
        tally = ctx.collector.tally(MessageKind.SM)
        assert tally.count == 2
        assert tally.mean_bytes == DEFAULT_SIZE_MODEL.sm_optp(3)


class TestVisibilityMetric:
    def test_visibility_lag_measured(self):
        from repro import SimulationConfig, run_simulation

        cfg = SimulationConfig(protocol="optp", n_sites=4, n_vars=6,
                               write_rate=0.5, ops_per_process=30, seed=0,
                               latency=ConstantLatency(40.0),
                               warmup_fraction=0.0)
        result = run_simulation(cfg)
        lags = result.collector.visibility_lags
        assert lags.count > 0
        # constant 40 ms network, no gating stalls: every lag is exactly 40
        assert lags.minimum == pytest.approx(40.0, abs=1e-6)
        assert lags.maximum == pytest.approx(40.0, abs=1e-3)

    def test_visibility_excludes_local_applies(self):
        from repro import SimulationConfig, run_simulation

        cfg = SimulationConfig(protocol="optp", n_sites=3, n_vars=6,
                               write_rate=1.0, ops_per_process=20, seed=0,
                               warmup_fraction=0.0)
        result = run_simulation(cfg)
        writes = result.collector.ops_write
        # each write is applied locally once (not counted) and remotely
        # n-1 times (counted)
        assert result.collector.visibility_lags.count == writes * 2

    def test_summary_contains_visibility(self):
        from repro import SimulationConfig, run_simulation

        cfg = SimulationConfig(protocol="opt-track", n_sites=4, write_rate=0.5,
                               ops_per_process=20, seed=0, warmup_fraction=0.0)
        summary = run_simulation(cfg).summary()
        assert summary["mean_visibility_ms"] > 0
        assert summary["max_visibility_ms"] >= summary["mean_visibility_ms"]
