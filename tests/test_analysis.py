"""Unit tests for the closed-form cost models and the trade-off analysis."""

import pytest

from repro.analysis.model import (
    full_replication_message_count,
    full_track_total_size,
    opt_track_crp_total_size,
    opt_track_total_size,
    optp_total_size,
    partial_replication_message_count,
)
from repro.analysis.tradeoff import (
    crossover_write_rate,
    message_count_ratio,
    min_sites_for_write_rate,
    partial_beats_full,
)
from repro.metrics.sizing import DEFAULT_SIZE_MODEL, SizeModel


class TestMessageCounts:
    def test_full_replication_formula(self):
        assert full_replication_message_count(10, 100) == 900

    def test_partial_formula_matches_paper_table4_n5(self):
        # paper, n=5, w_rate=0.2, 2550 measured ops: full 2036 vs partial 3208
        n, p = 5, 2
        w, r = 510, 2040
        full = full_replication_message_count(n, w)
        partial = partial_replication_message_count(n, p, w, r)
        assert full == pytest.approx(2040)
        assert partial == pytest.approx(3264, rel=0.02)
        assert partial > full  # the one cell where partial loses

    def test_partial_formula_n10(self):
        n, p = 10, 3
        w, r = 1020, 4080
        partial = partial_replication_message_count(n, p, w, r)
        assert partial == pytest.approx(8466, rel=0.01)  # paper reports 8297

    def test_reads_free_under_full_replication(self):
        assert full_replication_message_count(8, 10, r=1000) == (
            full_replication_message_count(8, 10, r=0)
        )

    def test_p_equals_n_means_no_fetches(self):
        n = 7
        # with p = n every read is local: count reduces to the full-
        # replication write cost
        assert partial_replication_message_count(n, n, 50, 50) == (
            full_replication_message_count(n, 50)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            partial_replication_message_count(5, 0, 1, 1)
        with pytest.raises(ValueError):
            partial_replication_message_count(5, 6, 1, 1)
        with pytest.raises(ValueError):
            partial_replication_message_count(5, 2, -1, 1)


class TestSizeModels:
    def test_full_track_quadratic_in_n(self):
        s10 = full_track_total_size(10, 3, 100, 100).sm_bytes
        s20 = full_track_total_size(20, 6, 100, 100).sm_bytes
        # per-message size is ~8n^2: doubling n quadruples the dominant term
        per10 = s10 / full_track_total_size(10, 3, 100, 100).sm_count
        per20 = s20 / full_track_total_size(20, 6, 100, 100).sm_count
        m = DEFAULT_SIZE_MODEL
        assert per10 == m.sm_full_track(10)
        assert per20 == m.sm_full_track(20)
        assert (per20 - m.envelope_full_track - m.var_id - m.value) == pytest.approx(
            4 * (per10 - m.envelope_full_track - m.var_id - m.value)
        )

    def test_opt_track_linear_default(self):
        # per-message size with the default amortized-O(n) log is linear in n
        def per(n, p):
            cb = opt_track_total_size(n, p, 1, 0)
            return cb.sm_bytes / cb.sm_count

        assert per(40, 12) - per(20, 6) == pytest.approx(2 * (per(20, 6) - per(10, 3)))

    def test_opt_track_calibrated_by_measurement(self):
        cb = opt_track_total_size(10, 3, 100, 0,
                                  amortized_log_entries=20, mean_dests_per_entry=2)
        m = DEFAULT_SIZE_MODEL
        expected_log = 20 * (m.log_entry_overhead + 2 * m.dest_id)
        assert cb.sm_bytes / cb.sm_count == pytest.approx(
            m.envelope_opt_track + m.var_id + m.value + m.site_id + m.clock
            + expected_log
        )

    def test_crp_flat_in_n(self):
        per = lambda n: (
            opt_track_crp_total_size(n, 10).sm_bytes
            / opt_track_crp_total_size(n, 10).sm_count
        )
        assert per(40) == per(5)  # O(d): independent of n

    def test_optp_linear_in_n(self):
        m = DEFAULT_SIZE_MODEL
        per = lambda n: (
            optp_total_size(n, 10).sm_bytes / optp_total_size(n, 10).sm_count
        )
        assert per(40) - per(5) == 35 * m.vector_entry

    def test_breakdown_totals(self):
        cb = full_track_total_size(10, 3, 50, 50)
        assert cb.total_count == pytest.approx(
            partial_replication_message_count(10, 3, 50, 50)
        )
        assert cb.total_bytes == cb.sm_bytes + cb.fm_bytes + cb.rm_bytes


class TestCrossover:
    def test_threshold_formula(self):
        assert crossover_write_rate(9) == pytest.approx(0.2)
        assert crossover_write_rate(3) == pytest.approx(0.5)

    def test_partial_beats_full_strictness(self):
        # exactly at eq. (1) equality, partial does not strictly win
        n, p = 9, 3
        w, r = 2.0, 8.0  # w = 2r/(n-1) exactly
        assert not partial_beats_full(n, p, w, r)
        assert partial_beats_full(n, p, w + 0.01, r)

    def test_threshold_independent_of_p(self):
        n = 10
        wr = crossover_write_rate(n) + 0.01
        w, r = wr * 100, (1 - wr) * 100
        for p in range(1, n):
            assert partial_beats_full(n, p, w, r)

    def test_ratio_below_one_above_threshold(self):
        n, p = 20, 6
        assert message_count_ratio(n, p, 0.5) < 1.0
        assert message_count_ratio(n, p, 0.05) > 1.0

    def test_ratio_pure_read_is_infinite(self):
        assert message_count_ratio(10, 3, 0.0) == float("inf")

    def test_min_sites_inverse(self):
        for wr in (0.1, 0.2, 0.35, 0.5, 0.9):
            n = min_sites_for_write_rate(wr)
            assert crossover_write_rate(n) < wr
            assert n == 1 or crossover_write_rate(n - 1) >= wr

    def test_paper_table4_predictions(self):
        # eq. (2): at n=5 threshold is 1/3 -> 0.2 loses, 0.5 and 0.8 win
        assert crossover_write_rate(5) == pytest.approx(1 / 3)
        assert not 0.2 > crossover_write_rate(5)
        assert 0.5 > crossover_write_rate(5)
        # at n >= 10 the threshold is below 0.2: partial always wins
        for n in (10, 20, 30, 40):
            assert 0.2 > crossover_write_rate(n)
