"""Tests for the replica-convergence analysis."""

import pytest

from repro import (
    CausalCluster,
    ConstantLatency,
    PerPairLatency,
    SimulationConfig,
    run_simulation,
)
from repro.verify.convergence import check_convergence, divergent_variables


class TestConvergedRuns:
    @pytest.mark.parametrize("protocol",
                             ["full-track", "opt-track", "opt-track-crp", "optp"])
    def test_sequentialized_writes_converge(self, protocol):
        # writes spaced far apart (fully settled between ops) are totally
        # ordered by ->co via nothing... actually by timing alone they
        # are concurrent — but single-writer runs ARE ordered
        kw = {"replication_factor": 2} if protocol in ("full-track", "opt-track") else {}
        c = CausalCluster(4, protocol=protocol, n_vars=6,
                          latency=ConstantLatency(5.0), **kw)
        for k in range(12):
            c.write(0, k % 6, k)   # single writer: program order chains all
            c.settle()
        report = check_convergence(c.protocols, c.history)
        assert report.ok
        assert report.divergent == []
        assert report.divergence_rate == 0.0

    def test_causally_chained_writers_converge(self):
        c = CausalCluster(3, protocol="optp", n_vars=4,
                          latency=ConstantLatency(5.0))
        c.write(0, 1, "a")
        c.settle()
        assert c.read(1, 1) == "a"   # creates the cross-writer chain
        c.write(1, 1, "b")
        c.settle()
        report = check_convergence(c.protocols, c.history)
        assert report.ok and report.divergent == []
        for vals in report.final_values.values():
            assert len(vals) == 1


class TestLegitimateDivergence:
    def test_concurrent_writes_may_diverge(self):
        # two sites write the same variable at the same instant with
        # asymmetric delays: replicas can apply them in opposite orders
        lat = [
            [0.0, 1.0, 50.0],
            [1.0, 0.0, 1.0],
            [50.0, 1.0, 0.0],
        ]
        c = CausalCluster(3, protocol="optp", n_vars=2,
                          latency=PerPairLatency(lat))
        c.write(0, 0, "from-0")   # reaches site1 fast, site2 slow
        c.write(2, 0, "from-2")   # reaches site1 fast, site0 slow
        c.settle()
        report = check_convergence(c.protocols, c.history)
        # divergence is allowed — but only the legitimate kind
        assert report.ok
        if report.divergent:
            assert report.divergent == [0]
            assert report.divergence_rate > 0

    def test_divergence_rate_over_random_run(self):
        cfg = SimulationConfig(protocol="optp", n_sites=6, n_vars=10,
                               write_rate=0.8, ops_per_process=40, seed=1,
                               record_history=True)
        result = run_simulation(cfg)
        report = check_convergence(result.protocols, result.history)
        assert report.ok  # any divergence must be concurrent-only
        assert 0.0 <= report.divergence_rate <= 1.0


class TestIllegitimateDivergenceDetection:
    def test_ordered_final_values_flagged(self):
        # forge protocol state: replicas ending on causally ordered writes
        from repro.memory.store import WriteId
        from repro.verify.history import HistoryRecorder

        c = CausalCluster(2, protocol="optp", n_vars=1,
                          latency=ConstantLatency(1.0))
        c.write(0, 0, "first")
        c.settle()
        c.write(0, 0, "second")
        c.settle()
        # sabotage: wind replica 1 back to the earlier write
        c.protocols[1].ctx.store.apply(0, "first", WriteId(0, 1), 99.0)
        report = check_convergence(c.protocols, c.history)
        assert not report.ok
        assert "causally ordered" in report.illegitimate[0]

    def test_bottom_next_to_value_flagged(self):
        from repro.memory.store import BOTTOM

        c = CausalCluster(2, protocol="optp", n_vars=1,
                          latency=ConstantLatency(1.0))
        c.write(0, 0, "x")
        c.settle()
        slot = c.protocols[1].ctx.store.read(0)
        slot.value, slot.write_id = BOTTOM, None  # sabotage: lost apply
        report = check_convergence(c.protocols, c.history)
        assert not report.ok
        assert "⊥" in report.illegitimate[0]

    def test_divergent_variables_raw_view(self):
        c = CausalCluster(3, protocol="optp", n_vars=2,
                          latency=ConstantLatency(1.0))
        c.write(0, 0, "v")
        c.settle()
        finals = divergent_variables(c.protocols)
        assert set(finals) == {0, 1}
        assert len(finals[0]) == 1      # all replicas agree
        assert finals[1] == {None}      # never written
