"""Port conformance: both substrates structurally satisfy repro.core.ports."""

from repro.core.ports import (
    Clock,
    Durability,
    NullTransport,
    Scheduler,
    TimerService,
    Transport,
)
from repro.service.channel import ServiceTransport
from repro.service.runtime import StepClock
from repro.sim.checkpoint import SiteDisk
from repro.sim.engine import Simulator
from repro.sim.network import Network


def _sim_and_network(n=3):
    sim = Simulator()
    net = Network(sim, n)
    return sim, net


class TestSimulatorSubstrate:
    """The simulator satisfies the ports with zero adaptation code."""

    def test_simulator_is_clock_and_timer_service(self):
        sim, _ = _sim_and_network()
        assert isinstance(sim, Clock)
        assert isinstance(sim, TimerService)
        assert isinstance(sim, Scheduler)

    def test_network_is_transport(self):
        _, net = _sim_and_network()
        assert isinstance(net, Transport)

    def test_site_disk_is_durability(self):
        assert isinstance(SiteDisk(0), Durability)


class TestServiceSubstrate:
    def test_step_clock_is_scheduler(self):
        clock = StepClock()
        assert isinstance(clock, Clock)
        assert isinstance(clock, TimerService)
        assert isinstance(clock, Scheduler)

    def test_service_transport_is_transport(self):
        transport = ServiceTransport(
            0, StepClock(), lambda dst, frame: None, lambda src, msg: None
        )
        assert isinstance(transport, Transport)


class TestNullTransport:
    def test_is_transport(self):
        assert isinstance(NullTransport(), Transport)

    def test_is_inert(self):
        null = NullTransport()
        assert null.send(0, 1, object(), size_bytes=10.0) is None
        assert null.overloaded(0) is False
        null.check_overload_admission(0)  # never raises


class TestStepClock:
    def test_time_only_moves_on_demand(self):
        clock = StepClock()
        assert clock.now == 0.0
        clock.tick(5.0)
        assert clock.now == 5.0

    def test_timers_fire_in_deadline_then_arm_order(self):
        clock = StepClock()
        fired = []
        clock.schedule(10.0, lambda: fired.append("b"))
        clock.schedule(5.0, lambda: fired.append("a"))
        clock.schedule(10.0, lambda: fired.append("c"))
        assert clock.advance(20.0) == 3
        assert fired == ["a", "b", "c"]
        assert clock.now == 20.0

    def test_cancelled_timers_do_not_fire(self):
        clock = StepClock()
        fired = []
        handle = clock.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        assert clock.pending_timers == 0
        clock.advance(5.0)
        assert fired == []

    def test_timer_armed_during_callback_fires_same_advance(self):
        clock = StepClock()
        fired = []

        def rearm():
            fired.append(clock.now)
            if len(fired) < 3:
                clock.schedule(2.0, rearm)

        clock.schedule(2.0, rearm)
        clock.advance(10.0)
        assert fired == [2.0, 4.0, 6.0]
