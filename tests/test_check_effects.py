"""Seeded-injection tests for the whole-program effect analyzer.

Each test plants a known effect in a synthetic package under
``tmp_path`` and asserts the analyzer (callgraph -> leaf detection ->
fixpoint propagation -> contract policy) actually reports it — the
certificate is only worth committing if every effect class is
demonstrably detectable.  Negative twins show the sanctioned idioms
(seeded RNG, injected ports, data-only vocabularies) stay clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.check.callgraph import ProjectGraph
from repro.check.contract import Contract, ContractError
from repro.check.effects import (
    analyze_effects,
    diff_against_baseline,
    load_baseline,
    render_baseline,
)

BASE_FILES = {
    "app/__init__.py": "",
    "app/core/__init__.py": "",
    "app/sim/__init__.py": "",
}


def build(tmp_path: Path, files: dict[str, str]) -> ProjectGraph:
    for rel, src in {**BASE_FILES, **files}.items():
        p = tmp_path / "src" / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    return ProjectGraph.build(tmp_path / "src", "app")


def make_contract(ports=(), allows=()) -> Contract:
    return Contract.from_dict({
        "project": {"package": "app"},
        "layers": {
            "core": {"modules": ["app.core"], "may_import": []},
            "sim": {"modules": ["app.sim"], "may_import": ["core"]},
            "harness": {"modules": ["app"], "may_import": ["*"]},
        },
        "ports": list(ports),
        "effects": {
            "pure_trees": ["app.core"],
            "forbidden": [
                "WALL_CLOCK", "UNSEEDED_RNG", "FILE_IO", "NETWORK",
                "SIM_INTERNAL", "MUTATES_SENT_PAYLOAD",
            ],
            "allow": list(allows),
        },
    })


def run(tmp_path, files, **contract_kw):
    graph = build(tmp_path, files)
    contract = make_contract(**contract_kw)
    report = analyze_effects(graph, contract)
    return report, report.findings(contract)


def efff(findings, code="EFF001"):
    return [f for f in findings if f.code == code]


# ----------------------------------------------------------------------
# leaf detection, one test per effect class
# ----------------------------------------------------------------------
class TestLeafDetection:
    def test_wall_clock_direct(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/core/proto.py": """
                import time

                def stamp() -> float:
                    return time.time()
            """,
        })
        assert "WALL_CLOCK" in report.effects["app.core.proto.stamp"]
        assert len(efff(findings)) == 1
        assert "time.time" in findings[0].message

    def test_wall_clock_from_import(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/core/proto.py": """
                from time import perf_counter

                def stamp() -> float:
                    return perf_counter()
            """,
        })
        assert "WALL_CLOCK" in report.effects["app.core.proto.stamp"]

    def test_unseeded_rng(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/core/proto.py": """
                import random

                def draw() -> float:
                    return random.random()
            """,
        })
        assert "UNSEEDED_RNG" in report.effects["app.core.proto.draw"]
        assert efff(findings)

    def test_seeded_rng_constructor_is_clean(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/core/proto.py": """
                import random

                def make(seed: int):
                    return random.Random(seed)
            """,
        })
        assert report.effects["app.core.proto.make"] == set()
        assert not findings

    def test_bare_rng_constructor_flagged(self, tmp_path):
        report, _ = run(tmp_path, {
            "app/core/proto.py": """
                import numpy

                def make():
                    return numpy.random.default_rng()
            """,
        })
        assert "UNSEEDED_RNG" in report.effects["app.core.proto.make"]

    def test_file_io_open_and_method(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/core/proto.py": """
                from pathlib import Path

                def dump(p: Path, data: str) -> None:
                    p.write_text(data)

                def slurp(name: str) -> str:
                    with open(name) as fh:
                        return fh.read()
            """,
        })
        assert "FILE_IO" in report.effects["app.core.proto.dump"]
        assert "FILE_IO" in report.effects["app.core.proto.slurp"]
        assert len(efff(findings)) == 2

    def test_network(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/core/proto.py": """
                import socket

                def dial(host: str):
                    return socket.create_connection((host, 80))
            """,
        })
        assert "NETWORK" in report.effects["app.core.proto.dial"]
        assert efff(findings)

    def test_sim_internal_runtime_reference(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/sim/engine.py": """
                class Simulator:
                    pass
            """,
            "app/core/proto.py": """
                from app.sim.engine import Simulator

                def boot():
                    return Simulator()
            """,
        })
        assert "SIM_INTERNAL" in report.effects["app.core.proto.boot"]
        assert efff(findings)

    def test_sim_annotation_only_is_clean(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/sim/engine.py": """
                class Simulator:
                    pass
            """,
            "app/core/proto.py": """
                from __future__ import annotations

                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from app.sim.engine import Simulator

                def run(sim: Simulator) -> None:
                    sim.step()
            """,
        })
        assert report.effects["app.core.proto.run"] == set()
        assert not findings

    def test_sim_data_only_port_exempts(self, tmp_path):
        files = {
            "app/sim/events.py": """
                class EventKind:
                    WRITE = 1
            """,
            "app/core/proto.py": """
                from app.sim.events import EventKind

                def kind() -> int:
                    return EventKind.WRITE
            """,
        }
        # without the port: flagged
        report, findings = run(tmp_path, files)
        assert "SIM_INTERNAL" in report.effects["app.core.proto.kind"]
        # with a data-only port: exempt
        report, findings = run(tmp_path, files, ports=[{
            "importer": "app.core", "imported": "app.sim.events",
            "kind": "data-only", "reason": "event vocabulary",
        }])
        assert report.effects["app.core.proto.kind"] == set()
        assert not findings

    def test_mutate_after_send(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/core/proto.py": """
                def relay(net, deps):
                    net.send(deps)
                    deps.append(1)
            """,
        })
        assert (
            "MUTATES_SENT_PAYLOAD"
            in report.effects["app.core.proto.relay"]
        )
        assert efff(findings)


# ----------------------------------------------------------------------
# propagation
# ----------------------------------------------------------------------
class TestPropagation:
    def test_transitive_effect_reaches_caller(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/core/proto.py": """
                import time

                def leaf() -> float:
                    return time.time()

                def middle() -> float:
                    return leaf()

                def top() -> float:
                    return middle()
            """,
        })
        for fn in ("leaf", "middle", "top"):
            assert "WALL_CLOCK" in report.effects[f"app.core.proto.{fn}"]
        # one EFF001 per function in the pure tree
        assert len(efff(findings)) == 3

    def test_witness_chain_names_the_path(self, tmp_path):
        report, _ = run(tmp_path, {
            "app/core/proto.py": """
                import time

                def leaf() -> float:
                    return time.time()

                def top() -> float:
                    return leaf()
            """,
        })
        chain = report.chain("app.core.proto.top", "WALL_CLOCK")
        assert "app.core.proto.leaf" in chain[0]
        assert "time.time" in chain[-1]

    def test_cross_module_propagation(self, tmp_path):
        report, _ = run(tmp_path, {
            "app/core/proto.py": """
                from app.core.util import now

                def top() -> float:
                    return now()
            """,
            "app/core/util.py": """
                import time

                def now() -> float:
                    return time.time()
            """,
        })
        assert "WALL_CLOCK" in report.effects["app.core.proto.top"]

    def test_method_call_through_self(self, tmp_path):
        report, _ = run(tmp_path, {
            "app/core/proto.py": """
                import time

                class Proto:
                    def _stamp(self) -> float:
                        return time.time()

                    def act(self) -> float:
                        return self._stamp()
            """,
        })
        assert "WALL_CLOCK" in report.effects["app.core.proto.Proto.act"]

    def test_module_level_code_has_effects(self, tmp_path):
        report, _ = run(tmp_path, {
            "app/core/proto.py": """
                import time

                T0 = time.time()
            """,
        })
        assert "WALL_CLOCK" in report.effects["app.core.proto.<module>"]

    def test_injected_port_calls_stay_opaque(self, tmp_path):
        # self.ctx.network.send resolves to nothing: no effect
        report, findings = run(tmp_path, {
            "app/core/proto.py": """
                class Proto:
                    def __init__(self, ctx):
                        self.ctx = ctx

                    def emit(self, msg) -> None:
                        self.ctx.network.send(msg)
            """,
        })
        assert report.effects["app.core.proto.Proto.emit"] == set()
        assert not findings

    def test_effect_outside_pure_tree_not_a_finding(self, tmp_path):
        report, findings = run(tmp_path, {
            "app/harness.py": """
                import time

                def bench() -> float:
                    return time.time()
            """,
        })
        assert "WALL_CLOCK" in report.effects["app.harness.bench"]
        assert not findings  # harness is allowed its effects


# ----------------------------------------------------------------------
# policy: allows, suppressions, EFF003
# ----------------------------------------------------------------------
class TestPolicy:
    def test_contract_allow_silences(self, tmp_path):
        _, findings = run(tmp_path, {
            "app/core/proto.py": """
                import time

                def stamp() -> float:
                    return time.time()
            """,
        }, allows=[{
            "function": "app.core.proto.stamp",
            "effects": ["WALL_CLOCK"],
            "reason": "report-only timing",
        }])
        assert not efff(findings)

    def test_allow_requires_reason(self):
        with pytest.raises(ContractError, match="no reason"):
            make_contract(allows=[{
                "function": "app.core.x", "effects": ["FILE_IO"],
            }])

    def test_inline_suppression_with_reason(self, tmp_path):
        _, findings = run(tmp_path, {
            "app/core/proto.py": """
                import time

                # simcheck: ignore[EFF001] -- timing is report-only here
                def stamp() -> float:
                    return time.time()
            """,
        })
        assert not efff(findings)

    def test_impure_data_only_target_is_eff003(self, tmp_path):
        _, findings = run(tmp_path, {
            "app/sim/events.py": """
                import time

                def stamp() -> float:
                    return time.time()
            """,
            "app/core/proto.py": "",
        }, ports=[{
            "importer": "app.core", "imported": "app.sim.events",
            "kind": "data-only", "reason": "supposedly pure vocabulary",
        }])
        codes = [f.code for f in findings]
        assert "EFF003" in codes


# ----------------------------------------------------------------------
# baseline round-trip
# ----------------------------------------------------------------------
class TestBaseline:
    FILES = {
        "app/harness.py": """
            import time

            def bench() -> float:
                return time.time()
        """,
    }

    def test_round_trip_no_drift(self, tmp_path):
        report, _ = run(tmp_path, self.FILES)
        path = tmp_path / "EFFECTS_BASELINE.json"
        path.write_text(render_baseline(report, "app"))
        baseline = load_baseline(path)
        assert baseline is not None
        assert baseline["app.harness.bench"] == {"WALL_CLOCK"}
        assert diff_against_baseline(report, baseline) == []

    def test_new_effect_is_drift(self, tmp_path):
        report, _ = run(tmp_path, self.FILES)
        path = tmp_path / "EFFECTS_BASELINE.json"
        path.write_text(render_baseline(report, "app"))
        baseline = load_baseline(path)
        # the code gains an effect the baseline has not seen
        report2, _ = run(tmp_path, {
            "app/harness.py": """
                import time

                def bench() -> float:
                    open("/tmp/x")
                    return time.time()
            """,
        })
        drift = diff_against_baseline(report2, baseline)
        assert [f.code for f in drift] == ["EFF002"]
        assert "FILE_IO" in drift[0].message

    def test_losing_an_effect_is_not_drift(self, tmp_path):
        report, _ = run(tmp_path, self.FILES)
        path = tmp_path / "EFFECTS_BASELINE.json"
        path.write_text(render_baseline(report, "app"))
        baseline = load_baseline(path)
        report2, _ = run(tmp_path, {
            "app/harness.py": """
                def bench() -> float:
                    return 0.0
            """,
        })
        assert diff_against_baseline(report2, baseline) == []

    def test_missing_baseline_is_none(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") is None
