"""Durable-state layer: snapshot/restore hooks, WAL, checkpoint policy.

The crash-recovery safety story rests on two local properties tested
here: (1) ``snapshot()``/``restore()`` round-trip every piece of
protocol metadata bit-exactly, for all four protocols; (2) WAL replay
re-executes the logged operations through the normal code paths without
emitting network traffic, so a restore is deterministic and silent.
Plus the two zero-overhead contracts: no machinery ⇒ the seed path is
untouched, and checkpointing alone (no crash) perturbs no metric.
"""

import pytest

from repro import (
    CausalCluster,
    ChannelFaults,
    ConstantLatency,
    CrashEvent,
    FaultPlan,
    RetransmitPolicy,
    SimulationConfig,
    run_simulation,
)
from repro.sim.checkpoint import CheckpointPolicy, SiteDisk, WalRecord
from repro.verify.causal_checker import check_causal_consistency

PROTOCOLS = ["full-track", "opt-track", "opt-track-crp", "optp"]
FAST_RETX = RetransmitPolicy(base_rto_ms=120.0, max_rto_ms=2000.0, jitter_ms=10.0)


def canon(obj):
    """Structural form of a snapshot for equality checks.

    Snapshots deliberately hold live-typed state (numpy arrays, clock
    objects, KS logs) because ``restore`` reinstalls them directly;
    tests compare them by value via this canonicalizer.
    """
    import dataclasses

    import numpy as np

    from repro.core.clocks import MatrixClock, VectorClock
    from repro.core.log import OptTrackLog, TupleLog

    if isinstance(obj, np.ndarray):
        return ("ndarray", obj.tolist())
    if isinstance(obj, MatrixClock):
        return ("matrix", obj.m.tolist())
    if isinstance(obj, VectorClock):
        return ("vector", obj.v.tolist())
    if isinstance(obj, OptTrackLog):
        return ("kslog", tuple(obj.entries()), tuple(sorted(obj._emptied)))
    if isinstance(obj, TupleLog):
        return ("tuplelog", obj.entries())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (type(obj).__name__,) + tuple(
            canon(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        )
    if isinstance(obj, dict):
        return tuple(sorted((k, canon(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple)):
        return tuple(canon(x) for x in obj)
    return obj


def busy_cluster(protocol, **kw):
    """A cluster with some applied state, pending traffic, and log content."""
    c = CausalCluster(4, protocol=protocol, n_vars=8,
                      latency=ConstantLatency(15.0), **kw)
    for i in range(12):
        c.write(i % 4, var=i % 8, value=i)
        if i % 3 == 0:
            c.advance(30.0)
    c.read(1, var=0)
    return c


class TestSnapshotRestore:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_round_trip_is_identity(self, protocol):
        c = busy_cluster(protocol)
        for proto in c.protocols:
            snap = proto.snapshot()
            proto.restore(snap)
            assert canon(proto.snapshot()) == canon(snap)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_restore_rolls_back_later_state(self, protocol):
        c = busy_cluster(protocol)
        proto = c.protocols[0]
        snap = proto.snapshot()
        # move the world forward: new writes change clocks, slots, logs
        for i in range(6):
            c.write(0, var=i % 8, value=f"later-{i}")
        c.settle()
        assert canon(proto.snapshot()) != canon(snap)
        proto.restore(snap)
        assert canon(proto.snapshot()) == canon(snap)

    def test_snapshot_is_deep(self):
        """Mutating live state after a snapshot must not leak into it."""
        c = busy_cluster("opt-track")
        proto = c.protocols[0]
        snap = proto.snapshot()
        before = canon(snap)
        c.write(0, var=0, value="mutation")
        c.settle()
        assert canon(snap) == before


class TestSiteDisk:
    def test_wal_appends_and_truncation(self):
        disk = SiteDisk(3)
        disk.log_write(1, "a")
        disk.log_recv(0, object())
        disk.log_read(2)
        assert [r.kind for r in disk.wal] == ["write", "recv", "read"]
        assert disk.wal_appends == 3
        disk.install_checkpoint({"state": 1}, 500.0)
        assert disk.wal == []  # checkpoint subsumes the journal
        assert disk.checkpoint_time == 500.0
        assert disk.checkpoints_taken == 1

    def test_wal_record_fields(self):
        r = WalRecord("write", var=4, value="x")
        assert (r.kind, r.var, r.value) == ("write", 4, "x")

    def test_checkpoint_policy_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(interval_ms=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(interval_ms=-5.0)


class TestWalReplay:
    def crashy_run(self, protocol, checkpoint_interval_ms):
        plan = FaultPlan.build(
            default=ChannelFaults(drop_rate=0.05),
            crashes=(CrashEvent(2, 600.0, 1500.0),),
        )
        cfg = SimulationConfig(
            protocol=protocol, n_sites=5, n_vars=10, ops_per_process=25,
            seed=4, record_history=True, fault_plan=plan, fault_seed=9,
            retransmit=FAST_RETX,
            checkpoint_interval_ms=checkpoint_interval_ms,
        )
        return run_simulation(cfg)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_sparse_checkpoints_force_long_replay(self, protocol):
        """With one checkpoint at t=0, the whole pre-crash history comes
        back via WAL replay — and the run still verifies causally."""
        result = self.crashy_run(protocol, checkpoint_interval_ms=10_000.0)
        col = result.collector
        assert col.crashes == 1
        assert col.wal_replays.count == 1
        assert col.wal_replays.mean > 0  # something was actually replayed
        check_causal_consistency(result.history, result.placement).raise_if_violated()

    def test_dense_checkpoints_shrink_replay(self):
        sparse = self.crashy_run("opt-track", 10_000.0)
        dense = self.crashy_run("opt-track", 50.0)
        assert (dense.collector.wal_replays.mean
                < sparse.collector.wal_replays.mean)
        assert (dense.collector.checkpoints_taken
                > sparse.collector.checkpoints_taken)

    def test_replay_emits_no_network_traffic(self):
        """Replay runs against a null network: total physical messages
        right after a restore equal those right before it plus the
        rejoin machinery's own traffic — no replayed SM/FM storm.

        Pinned indirectly: replayed writes would each multicast to all
        replicas; with ~drop-free channels the SM lifetime count must
        equal exactly one send per (write, remote replica) pair.
        """
        result = self.crashy_run("optp", 10_000.0)
        writes = len(list(result.history.writes()))
        sm = result.collector.tallies
        from repro.metrics.collector import MessageKind
        per_write_dests = result.config.n_sites - 1  # optp is fully replicated
        assert sm[MessageKind.SM].lifetime_count == writes * per_write_dests


class TestZeroOverheadContracts:
    BASE = dict(protocol="opt-track", n_sites=5, n_vars=12,
                ops_per_process=25, seed=6)

    def test_no_machinery_without_config(self):
        result = run_simulation(SimulationConfig(**self.BASE))
        assert result.crash_manager is None
        col = result.collector
        assert col.checkpoints_taken == 0
        assert col.heartbeats_sent == 0
        assert col.crashes == 0

    def test_checkpointing_alone_changes_no_metric(self):
        """A crash-free run with checkpointing on must match the run
        with it off on every metric except the checkpoint counters and
        the (tick-extended) simulated clock."""
        plan = FaultPlan.build(default=ChannelFaults(drop_rate=0.02))
        base = dict(self.BASE, fault_plan=plan, fault_seed=2,
                    retransmit=FAST_RETX)
        off = run_simulation(SimulationConfig(**base)).summary()
        on = run_simulation(SimulationConfig(
            **base, checkpoint_interval_ms=150.0)).summary()
        skip = {"sim_time_ms", "checkpoints_taken"}
        diff = {k for k in off if k not in skip and off[k] != on.get(k)}
        assert not diff, f"checkpointing perturbed metrics: {sorted(diff)}"

    def test_checkpoint_only_run_installs_no_detector(self):
        result = run_simulation(SimulationConfig(
            **self.BASE, checkpoint_interval_ms=200.0))
        assert result.crash_manager is not None
        assert result.crash_manager.detector is None
        assert result.collector.heartbeats_sent == 0
        assert result.collector.checkpoints_taken > 0
