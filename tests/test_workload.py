"""Unit tests for schedules, the workload generator, and trace round-trips."""

import json

import numpy as np
import pytest

from repro.workload.generator import (
    PAPER_GAP_RANGE_MS,
    PAPER_OPS_PER_PROCESS,
    decode_value,
    encode_value,
    generate_workload,
)
from repro.workload.schedule import Operation, OpKind, SiteSchedule, Workload
from repro.workload.traces import (
    load_history,
    load_workload,
    save_history,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)


class TestOperation:
    def test_write_needs_value(self):
        with pytest.raises(ValueError):
            Operation(OpKind.WRITE, 0)

    def test_read_takes_no_value(self):
        with pytest.raises(ValueError):
            Operation(OpKind.READ, 0, 5)

    def test_is_write(self):
        assert Operation(OpKind.WRITE, 0, 1).is_write
        assert not Operation(OpKind.READ, 0).is_write


class TestSiteSchedule:
    def test_counts(self):
        sched = SiteSchedule(0, (
            (1.0, Operation(OpKind.WRITE, 0, 1)),
            (2.0, Operation(OpKind.READ, 1)),
            (3.0, Operation(OpKind.READ, 2)),
        ))
        assert len(sched) == 3
        assert sched.write_count == 1
        assert sched.read_count == 2

    def test_times_must_be_sorted(self):
        with pytest.raises(ValueError):
            SiteSchedule(0, (
                (2.0, Operation(OpKind.READ, 0)),
                (1.0, Operation(OpKind.READ, 0)),
            ))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SiteSchedule(0, ((-1.0, Operation(OpKind.READ, 0)),))


class TestWorkloadValidation:
    def test_site_labels_must_match_position(self):
        sched = SiteSchedule(1, ())
        with pytest.raises(ValueError):
            Workload(schedules=(sched,), n_vars=5)

    def test_vars_must_fit(self):
        sched = SiteSchedule(0, ((1.0, Operation(OpKind.READ, 9)),))
        with pytest.raises(ValueError):
            Workload(schedules=(sched,), n_vars=5)


class TestGenerator:
    def test_paper_defaults(self):
        wl = generate_workload(3, seed=0)
        assert wl.n_sites == 3
        assert wl.total_operations == 3 * PAPER_OPS_PER_PROCESS
        assert wl.n_vars == 100

    def test_deterministic(self):
        a = generate_workload(4, write_rate=0.4, ops_per_process=50, seed=9)
        b = generate_workload(4, write_rate=0.4, ops_per_process=50, seed=9)
        assert workload_to_dict(a) == workload_to_dict(b)

    def test_seed_changes_schedule(self):
        a = generate_workload(4, ops_per_process=50, seed=1)
        b = generate_workload(4, ops_per_process=50, seed=2)
        assert workload_to_dict(a) != workload_to_dict(b)

    def test_gaps_in_paper_range(self):
        wl = generate_workload(2, ops_per_process=200, seed=0)
        lo, hi = PAPER_GAP_RANGE_MS
        for sched in wl.schedules:
            times = [t for t, _ in sched.items]
            gaps = np.diff([0.0] + times)
            assert (gaps >= lo).all() and (gaps <= hi).all()

    def test_write_rate_statistics(self):
        wl = generate_workload(5, write_rate=0.3, ops_per_process=400, seed=0)
        assert wl.actual_write_rate() == pytest.approx(0.3, abs=0.03)

    def test_extreme_write_rates(self):
        all_w = generate_workload(2, write_rate=1.0, ops_per_process=50, seed=0)
        assert all_w.total_writes == 100 and all_w.total_reads == 0
        all_r = generate_workload(2, write_rate=0.0, ops_per_process=50, seed=0)
        assert all_r.total_writes == 0

    def test_variables_cover_range(self):
        wl = generate_workload(2, n_vars=10, ops_per_process=500, seed=0)
        touched = {op.var for s in wl.schedules for _, op in s.items}
        assert touched == set(range(10))

    def test_values_traceable(self):
        wl = generate_workload(3, write_rate=1.0, ops_per_process=20, seed=0)
        for sched in wl.schedules:
            for k, (_, op) in enumerate(sched.items):
                site, seq = decode_value(op.value)
                assert site == sched.site
                assert seq == k + 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            generate_workload(0)
        with pytest.raises(ValueError):
            generate_workload(2, write_rate=1.5)
        with pytest.raises(ValueError):
            generate_workload(2, ops_per_process=0)
        with pytest.raises(ValueError):
            generate_workload(2, gap_range_ms=(10.0, 5.0))


class TestValueEncoding:
    def test_roundtrip(self):
        for site, seq in [(0, 0), (3, 17), (39, 599)]:
            assert decode_value(encode_value(site, seq)) == (site, seq)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_value(-1, 0)
        with pytest.raises(ValueError):
            decode_value(-5)


class TestTraces:
    def test_workload_roundtrip_dict(self):
        wl = generate_workload(3, write_rate=0.5, ops_per_process=30, seed=4)
        again = workload_from_dict(workload_to_dict(wl))
        assert workload_to_dict(again) == workload_to_dict(wl)
        assert again.n_sites == 3

    def test_workload_roundtrip_file(self, tmp_path):
        wl = generate_workload(2, ops_per_process=10, seed=1)
        path = tmp_path / "wl.json"
        save_workload(wl, path)
        again = load_workload(path)
        assert workload_to_dict(again) == workload_to_dict(wl)
        # and it is real JSON
        json.loads(path.read_text())

    def test_history_roundtrip_file(self, tmp_path):
        from repro import SimulationConfig, run_simulation

        r = run_simulation(SimulationConfig(
            protocol="optp", n_sites=3, n_vars=5, ops_per_process=15,
            seed=0, record_history=True,
        ))
        path = tmp_path / "hist.jsonl"
        save_history(r.history, path)
        again = load_history(path)
        assert len(again) == len(r.history)
        assert [e.kind for e in again.events] == [e.kind for e in r.history.events]

    def test_reloaded_history_still_checkable(self, tmp_path):
        from repro import SimulationConfig, check_causal_consistency, run_simulation

        r = run_simulation(SimulationConfig(
            protocol="opt-track", n_sites=4, n_vars=6, ops_per_process=20,
            seed=2, record_history=True,
        ))
        path = tmp_path / "hist.jsonl"
        save_history(r.history, path)
        report = check_causal_consistency(load_history(path), r.placement)
        assert report.ok


class TestZipfDistribution:
    def test_zipf_skews_toward_low_ids(self):
        from repro.workload.generator import generate_workload
        from collections import Counter

        wl = generate_workload(4, n_vars=20, ops_per_process=400, seed=0,
                               var_distribution="zipf", zipf_s=1.2)
        counts = Counter(op.var for s in wl.schedules for _, op in s.items)
        # the hottest variable dominates the coldest decisively
        assert counts[0] > 5 * max(counts.get(19, 0), 1)

    def test_probabilities_normalized_and_monotone(self):
        from repro.workload.generator import variable_probabilities

        probs = variable_probabilities(50, "zipf", 1.1)
        assert probs.sum() == pytest.approx(1.0)
        assert all(probs[i] >= probs[i + 1] for i in range(49))
        uni = variable_probabilities(50, "uniform", 1.0)
        assert uni.max() == uni.min()

    def test_invalid_distribution_rejected(self):
        from repro.workload.generator import generate_workload

        with pytest.raises(ValueError):
            generate_workload(2, var_distribution="pareto")
        with pytest.raises(ValueError):
            generate_workload(2, var_distribution="zipf", zipf_s=0.0)

    def test_runner_accepts_zipf(self):
        from repro import SimulationConfig, check_causal_consistency, run_simulation

        cfg = SimulationConfig(protocol="opt-track", n_sites=5, n_vars=10,
                               write_rate=0.5, ops_per_process=25, seed=0,
                               var_distribution="zipf", record_history=True)
        result = run_simulation(cfg)
        check_causal_consistency(result.history, result.placement).raise_if_violated()
