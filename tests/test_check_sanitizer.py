"""Tests for the runtime sanitizers: frozen messages + double-run diffing.

The two dynamic layers of ``repro.check``:

* :class:`SanitizedNetwork` must catch a message whose aliased metadata
  is mutated between send and delivery — the exact bug class SIM005
  approximates statically — while staying invisible for honest traffic.
* :func:`double_run` must certify real configurations bit-deterministic
  and, when nondeterminism is injected (via the test-only second-run
  hook), pinpoint the first diverging event with its causal chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import pytest

from repro.check import MessageMutationError, double_run, fingerprint
from repro.check.sanitizer import (
    SanitizedNetwork,
    diff_traces,
    set_divergence_test_hook,
)
from repro.experiments.runner import SimulationConfig, run_simulation
from repro.obs.tracer import Tracer
from repro.sim.engine import Simulator
from repro.sim.network import Network


@dataclass
class Payload:
    """A message whose metadata is captured by reference (like Dests)."""

    origin: int
    dests: list = field(default_factory=list)


def make_net(n_sites: int = 2):
    sim = Simulator()
    net = SanitizedNetwork(Network(sim, n_sites))
    return sim, net


# ----------------------------------------------------------------------
# structural fingerprinting
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_equal_structure_equal_fingerprint(self):
        a = Payload(0, dests=[1, 2])
        b = Payload(0, dests=[1, 2])
        assert fingerprint(a) == fingerprint(b)

    def test_set_insertion_order_irrelevant(self):
        a = {3, 1, 2}
        b = set()
        for x in (2, 3, 1):
            b.add(x)
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(frozenset(a)) != fingerprint(a)  # type matters

    def test_mutation_changes_fingerprint(self):
        msg = Payload(0, dests=[1])
        before = fingerprint(msg)
        msg.dests.append(2)
        assert fingerprint(msg) != before

    def test_numpy_and_clock_objects(self):
        np = pytest.importorskip("numpy")
        from repro.core.clocks import MatrixClock

        a, b = MatrixClock(3), MatrixClock(3)
        assert fingerprint(a) == fingerprint(b)
        b.m[1, 2] = 7.0
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(np.zeros(3)) != fingerprint(np.zeros(4))


# ----------------------------------------------------------------------
# frozen-message network wrapper
# ----------------------------------------------------------------------
class TestSanitizedNetwork:
    def test_honest_message_delivered(self):
        sim, net = make_net()
        got = []
        net.register(0, lambda src, msg: got.append((src, msg)))
        net.register(1, lambda src, msg: got.append((src, msg)))
        msg = Payload(0, dests=[1])
        net.send(0, 1, msg)
        sim.run()
        assert got == [(0, msg)]
        assert net.mutation_checks == 1

    def test_aliased_mutation_caught_at_delivery(self):
        """The SIM005 bug class, dynamically: mutate after send, boom."""
        sim, net = make_net()
        net.register(0, lambda src, msg: None)
        net.register(1, lambda src, msg: None)
        msg = Payload(0, dests=[1])
        net.send(0, 1, msg)
        msg.dests.append(2)  # the in-flight message changes under us
        with pytest.raises(MessageMutationError) as exc:
            sim.run()
        text = str(exc.value)
        assert "Payload" in text
        assert "site 0" in text and "site 1" in text
        assert "dests" in text  # _changed_fields names the drifted field

    def test_nested_metadata_mutation_caught(self):
        sim, net = make_net()
        net.register(0, lambda src, msg: None)
        net.register(1, lambda src, msg: None)
        shared = {0: [1.0, 2.0]}
        msg = Payload(0, dests=[shared])
        net.send(0, 1, msg)
        shared[0][1] = 99.0  # deep mutation through the alias
        with pytest.raises(MessageMutationError):
            sim.run()

    def test_unknown_payloads_pass_unchecked(self):
        """Packets that never crossed send() (transport internals) are
        not the wrapper's business."""
        sim, net = make_net()
        got = []
        net.register(0, lambda src, msg: got.append(msg))
        net.register(1, lambda src, msg: got.append(msg))
        stealth = Payload(0, dests=[1])
        net._inner.send(0, 1, stealth)
        stealth.dests.append(2)  # mutated, but was never fingerprinted
        sim.run()
        assert got == [stealth]
        assert net.mutation_checks == 0

    def test_delegates_to_inner_network(self):
        _sim, net = make_net(3)
        assert net.n_sites == 3
        assert net.channel_stats(0, 1).messages == 0

    def test_full_run_with_sanitizer_matches_plain_run(self):
        """sanitize=True must observe, never perturb: every protocol's
        summary is identical with and without the wrapper."""
        for protocol in ("full-track", "opt-track", "opt-track-crp", "optp"):
            cfg = SimulationConfig(
                protocol=protocol, n_sites=4, n_vars=20,
                ops_per_process=15, seed=7,
            )
            plain = run_simulation(cfg).summary()
            sanitized = run_simulation(replace(cfg, sanitize=True)).summary()
            assert plain == sanitized, protocol


# ----------------------------------------------------------------------
# double-run divergence detector
# ----------------------------------------------------------------------
CFG = SimulationConfig(
    protocol="opt-track", n_sites=4, n_vars=20, ops_per_process=15, seed=3
)


class TestDoubleRun:
    def test_deterministic_config_certified(self):
        report = double_run(CFG)
        assert report.identical
        assert report.events_a == report.events_b > 0
        assert "deterministic" in report.format()

    def test_injected_nondeterminism_flagged(self):
        """The test-only hook perturbs the second run's seed; the
        detector must pinpoint the first diverging event."""
        set_divergence_test_hook(lambda cfg: replace(cfg, seed=cfg.seed + 1))
        try:
            report = double_run(CFG)
        finally:
            set_divergence_test_hook(None)
        assert not report.identical
        d = report.divergence
        assert d is not None
        assert d.first is not None and d.second is not None
        assert d.changed_fields  # field-level diff of the event pair
        # the causal chain ends at the diverging event itself
        assert report.causal_chain
        assert report.causal_chain[-1]["id"] == d.second["id"]
        text = report.format()
        assert "DIVERGED" in text and "causal chain" in text

    def test_diff_traces_catches_truncated_log(self):
        tracer_a, tracer_b = Tracer(), Tracer()
        run_simulation(replace(CFG, sanitize=False), tracer=tracer_a)
        run_simulation(replace(CFG, sanitize=False), tracer=tracer_b)
        a, b = tracer_a.to_trace(), tracer_b.to_trace()
        full = diff_traces(a, b, protocol=CFG.protocol)
        assert full.identical
        b.events[:] = b.events[:-3]  # one run ended early
        cut = diff_traces(a, b, protocol=CFG.protocol)
        assert not cut.identical
        assert cut.divergence is not None
        assert cut.divergence.second is None  # run B has no such event
        assert "<no event" in cut.format()

    def test_chaos_config_deterministic(self):
        from repro.sim.faults import FaultPlan

        cfg = replace(
            CFG,
            fault_plan=FaultPlan.uniform(
                drop_rate=0.05, dup_rate=0.02, spike_rate=0.02
            ),
        )
        report = double_run(cfg)
        assert report.identical, report.format()
