"""Crash–recovery suite: protocols survive seeded crash plans.

The acceptance bar for the subsystem: under any seeded crash plan every
protocol finishes the standard workload with zero causal violations and
full convergence; crash-recovery runs additionally preserve the
exactly-once apply contract (the WAL replay must not re-emit or
re-record anything).  Crash-stop runs instead account every
never-completable operation as lost.

``REPRO_FAULT_SEED`` parameterizes the fault randomness so the CI chaos
matrix can sweep seeds without touching the test code.
"""

import os

import pytest

from repro import (
    CausalCluster,
    ChannelFaults,
    ConstantLatency,
    CrashEvent,
    FaultPlan,
    Partition,
    RetransmitPolicy,
    SimulationConfig,
    UniformLatency,
    run_simulation,
    seeded_crashes,
)
from repro.cli import _parse_crash_plan
from repro.verify.causal_checker import check_causal_consistency
from repro.verify.convergence import check_convergence

from .test_chaos import assert_exactly_once

PROTOCOLS = ["full-track", "opt-track", "opt-track-crp", "optp"]
FAST_RETX = RetransmitPolicy(base_rto_ms=120.0, max_rto_ms=2000.0, jitter_ms=10.0)

#: swept by the CI chaos matrix (defaults to the deterministic local run)
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

PLANS = {
    "single-recovery": FaultPlan.build(
        crashes=(CrashEvent(2, 600.0, 1500.0),),
    ),
    "double-recovery": FaultPlan.build(
        crashes=(CrashEvent(1, 400.0, 1200.0), CrashEvent(3, 1600.0, 2400.0)),
    ),
    "chaos+crash": FaultPlan.build(
        default=ChannelFaults(drop_rate=0.05),
        crashes=(CrashEvent(0, 800.0, 1900.0),),
    ),
    "seeded": FaultPlan.build(
        crashes=seeded_crashes(5, n_crashes=2, seed=FAULT_SEED),
    ),
}


def crash_run(protocol, plan, *, seed=1, ops=25, n=5, **kw):
    cfg = SimulationConfig(
        protocol=protocol, n_sites=n, n_vars=10, ops_per_process=ops,
        seed=seed, record_history=True, latency=UniformLatency(5.0, 60.0),
        fault_plan=plan, fault_seed=FAULT_SEED, retransmit=FAST_RETX,
        **kw,
    )
    return run_simulation(cfg)


class TestCrashRecoveryMatrix:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    def test_protocols_survive_every_crash_plan(self, protocol, plan_name):
        result = crash_run(protocol, PLANS[plan_name])
        col = result.collector
        assert col.crashes == len(PLANS[plan_name].crashes)
        assert col.downtime.count == col.crashes  # every victim came back
        check_causal_consistency(result.history, result.placement).raise_if_violated()
        conv = check_convergence(result.protocols, result.history)
        assert conv.ok, conv.illegitimate
        assert_exactly_once(result)
        assert col.lost_ops == 0

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_recovery_machinery_engaged(self, protocol):
        result = crash_run(protocol, PLANS["single-recovery"])
        col = result.collector
        assert col.checkpoints_taken > 0
        assert col.wal_replays.count == 1
        assert col.heartbeats_sent > 0
        assert col.sync_messages > 0
        assert col.detection_latency.count == 1
        assert col.catchup_latency.count == 1


class TestCrashStop:
    def test_lost_operations_accounted(self):
        """A site that never returns strands its own remaining schedule
        (and any live site blocked on a fetch into it)."""
        plan = FaultPlan.build(crashes=(CrashEvent(2, 500.0),))
        result = crash_run("opt-track", plan)
        col = result.collector
        assert col.crashes == 1
        assert col.downtime.count == 0  # nobody recovered
        assert col.lost_ops > 0
        check_causal_consistency(result.history, result.placement).raise_if_violated()

    def test_mixed_stop_and_recovery(self):
        plan = FaultPlan.build(
            crashes=(CrashEvent(0, 600.0), CrashEvent(2, 1100.0, 2200.0)),
        )
        result = crash_run("optp", plan)
        col = result.collector
        assert col.crashes == 2
        assert col.downtime.count == 1  # only site 2 came back
        assert col.lost_ops > 0
        check_causal_consistency(result.history, result.placement).raise_if_violated()


class TestDeterminism:
    def test_same_seeds_bit_identical(self):
        a = crash_run("opt-track-crp", PLANS["chaos+crash"])
        b = crash_run("opt-track-crp", PLANS["chaos+crash"])
        assert a.summary() == b.summary()
        assert a.sim_time_ms == b.sim_time_ms


class TestSeededCrashes:
    def test_distinct_victims_within_window(self):
        events = seeded_crashes(8, n_crashes=3, window_ms=(200.0, 900.0),
                                downtime_ms=(100.0, 400.0), seed=5)
        assert len(events) == 3
        assert len({e.site for e in events}) == 3
        for e in events:
            assert 200.0 <= e.at_ms <= 900.0
            assert 100.0 <= e.recover_ms - e.at_ms <= 400.0

    def test_crash_stop_mode(self):
        events = seeded_crashes(4, n_crashes=2, crash_stop=True, seed=1)
        assert all(e.is_crash_stop for e in events)

    def test_deterministic_in_seed(self):
        assert seeded_crashes(6, n_crashes=2, seed=9) == \
            seeded_crashes(6, n_crashes=2, seed=9)
        assert seeded_crashes(6, n_crashes=2, seed=9) != \
            seeded_crashes(6, n_crashes=2, seed=10)

    def test_rejects_too_many_victims(self):
        with pytest.raises(ValueError):
            seeded_crashes(3, n_crashes=4)


class TestPlanValidation:
    def test_crash_event_window(self):
        with pytest.raises(ValueError):
            CrashEvent(0, 500.0, 400.0)  # recovers before it crashes
        with pytest.raises(ValueError):
            CrashEvent(-1, 100.0)

    def test_overlapping_same_group_partitions_rejected(self):
        plan = FaultPlan.build(partitions=(
            Partition([0, 1], 100.0, 500.0),
            Partition([0, 1], 400.0, 800.0),
        ))
        with pytest.raises(ValueError, match="overlapping partitions"):
            plan.validate()

    def test_disjoint_or_distinct_partitions_accepted(self):
        FaultPlan.build(partitions=(
            Partition([0, 1], 100.0, 500.0),
            Partition([0, 1], 500.0, 800.0),   # touching is fine
            Partition([2, 3], 300.0, 600.0),   # different group is fine
        )).validate()

    def test_overlapping_crash_windows_rejected(self):
        plan = FaultPlan.build(crashes=(
            CrashEvent(1, 100.0, 900.0),
            CrashEvent(1, 500.0, 1200.0),
        ))
        with pytest.raises(ValueError, match="overlapping crash windows"):
            plan.validate()

    def test_crash_past_horizon_rejected(self):
        plan = FaultPlan.build(crashes=(CrashEvent(0, 5000.0, 6000.0),))
        with pytest.raises(ValueError, match="never be observed"):
            plan.validate(horizon_ms=2000.0)
        plan.validate(horizon_ms=8000.0)  # observable: fine

    def test_runner_validates_against_workload_horizon(self):
        """A plan whose crash can never be observed is a config error."""
        plan = FaultPlan.build(crashes=(CrashEvent(0, 10_000_000.0, 10_000_500.0),))
        with pytest.raises(ValueError, match="never be observed"):
            run_simulation(SimulationConfig(
                protocol="optp", n_sites=3, n_vars=6, ops_per_process=5,
                seed=0, fault_plan=plan, retransmit=FAST_RETX,
            ))


class TestCliCrashPlan:
    def test_parses_recovery_and_stop_entries(self):
        events = _parse_crash_plan("800:1600:2,1200:-:4")
        assert events == (CrashEvent(2, 800.0, 1600.0), CrashEvent(4, 1200.0))
        assert events[1].is_crash_stop

    @pytest.mark.parametrize("bad", ["800:1600", "a:b:c", "800:700:1"])
    def test_rejects_malformed_entries(self, bad):
        with pytest.raises((SystemExit, ValueError)):
            _parse_crash_plan(bad)


class TestPendingAccounting:
    def make(self):
        return CausalCluster(
            4, protocol="optp", n_vars=6,  # optp: fully replicated vars
            latency=ConstantLatency(10.0), fault_plan=FaultPlan(),
            retransmit=FAST_RETX, crash_recovery=True,
        )

    def test_messages_to_crashed_site_held_not_in_flight(self):
        c = self.make()
        c.write(0, var=0, value="warm")
        c.advance(200.0)
        c.crash_site(2)
        c.write(0, var=1, value="missed")   # optp replicates var 1 at site 2
        c.advance(400.0)
        pb = c.pending_breakdown()
        assert pb["held_for_crashed"] > 0
        assert pb["in_flight"] == 0         # live deliveries all acked
        assert c.pending_messages() == sum(pb.values()) - pb["in_flight"]
        c.recover_site(2)
        c.settle()
        assert c.pending_breakdown() == {
            "buffered": 0, "held_for_paused": 0,
            "held_for_crashed": 0, "in_flight": 0,
        }
        assert c.read(2, 1) == "missed"
        c.check().raise_if_violated()

    def test_settle_refuses_while_down(self):
        c = self.make()
        c.crash_site(1)
        with pytest.raises(RuntimeError, match="recover"):
            c.settle()
        c.recover_site(1)
        c.settle()

    def test_ops_at_down_site_rejected(self):
        c = self.make()
        c.crash_site(3)
        with pytest.raises(RuntimeError, match="down"):
            c.write(3, var=0, value=1)
        with pytest.raises(RuntimeError, match="down"):
            c.read(3, var=0)

    def test_crash_while_paused_rejected(self):
        """Held messages are acked-but-volatile: crashing a paused site
        would silently lose acknowledged deliveries."""
        c = self.make()
        c.pause_site(2)
        with pytest.raises(RuntimeError, match="paused"):
            c.crash_site(2)
        c.resume_site(2)
        c.crash_site(2)
        c.recover_site(2)
        c.settle()
