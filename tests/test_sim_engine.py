"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30.0, lambda: fired.append("c"))
        sim.schedule(10.0, lambda: fired.append("a"))
        sim.schedule(20.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for tag in "abcde":
            sim.schedule(5.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(12.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.5]
        assert sim.now == 12.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: sim.schedule_at(5.0, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == list(range(6))
        assert sim.now == 5.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(10.0, lambda: fired.append("x"))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        assert sim.pending_events == 2
        ev.cancel()
        assert sim.pending_events == 1

    def test_mass_cancellation_compacts_queue(self):
        # regression: cancelled events used to sit in the heap as
        # tombstones until popped, so a retransmit-heavy run kept O(all
        # cancels) dead entries resident.  Compaction must physically
        # shrink the heap once tombstones dominate, without disturbing
        # the surviving events' order.
        sim = Simulator()
        fired = []
        keep = []
        doomed = []
        for i in range(200):
            t = float(i + 1)
            if i % 10 == 0:
                keep.append(sim.schedule(t, lambda t=t: fired.append(t)))
            else:
                doomed.append(sim.schedule(t, lambda: fired.append("dead")))
        for ev in doomed:
            ev.cancel()
        # tombstones (180) outnumber survivors (20): compaction has run,
        # leaving at most the sub-threshold residue it deliberately skips
        assert sim.pending_events == 20
        assert len(sim._queue) < 64
        sim.run()
        assert fired == [float(i + 1) for i in range(0, 200, 10)]
        assert sim._tombstones == 0

    def test_compaction_below_min_queue_is_deferred(self):
        # small queues skip compaction (not worth a heapify); the popped
        # tombstones must still be skipped and accounted for
        sim = Simulator()
        fired = []
        doomed = [sim.schedule(float(i + 1), lambda: fired.append("dead"))
                  for i in range(10)]
        sim.schedule(99.0, lambda: fired.append("live"))
        for ev in doomed:
            ev.cancel()
        assert len(sim._queue) == 11  # tombstones still resident
        sim.run()
        assert fired == ["live"]
        assert sim._tombstones == 0

    def test_cancel_inside_callback_keeps_run_loop_consistent(self):
        # compaction can trigger mid-callback (cancel() during an event);
        # run() must keep draining the same physical queue afterwards
        sim = Simulator()
        fired = []
        doomed = [sim.schedule(50.0 + i, lambda: fired.append("dead"))
                  for i in range(100)]
        sim.schedule(200.0, lambda: fired.append("tail"))

        def cancel_all():
            fired.append("trigger")
            for ev in doomed:
                ev.cancel()

        sim.schedule(1.0, cancel_all)
        sim.run()
        assert fired == ["trigger", "tail"]


class TestRunUntil:
    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.schedule(50.0, lambda: fired.append(2))
        sim.run(until=30.0)
        assert fired == [1]
        assert sim.now == 30.0

    def test_run_can_resume_after_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.schedule(50.0, lambda: fired.append(2))
        sim.run(until=30.0)
        sim.run()
        assert fired == [1, 2]
        assert sim.now == 50.0

    def test_event_exactly_at_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(30.0, lambda: fired.append(1))
        sim.run(until=30.0)
        assert fired == [1]


class TestStep:
    def test_step_returns_false_on_empty_queue(self):
        assert Simulator().step() is False

    def test_step_processes_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 4


class TestEventBudget:
    def test_budget_exceeded_raises(self):
        sim = Simulator(max_events=10)

        def respawn():
            sim.schedule(1.0, respawn)

        sim.schedule(0.0, respawn)
        with pytest.raises(SimulationError, match="budget"):
            sim.run()

    def test_budget_not_hit_for_finite_run(self):
        sim = Simulator(max_events=10)
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 10


class TestDeterminism:
    def test_identical_schedules_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []
            for i in range(20):
                sim.schedule((i * 7) % 5 + 0.5, lambda i=i: trace.append((sim.now, i)))
            sim.run()
            return trace

        assert run_once() == run_once()
