"""Unit tests for matrix and vector Write clocks."""

import numpy as np
import pytest

from repro.core.clocks import MatrixClock, VectorClock


class TestMatrixClock:
    def test_starts_at_zero(self):
        mc = MatrixClock(3)
        assert (mc.m == 0).all()

    def test_increment_writes_only_destination_columns(self):
        mc = MatrixClock(4)
        mc.increment(1, [0, 2])
        assert mc[1, 0] == 1 and mc[1, 2] == 1
        assert mc[1, 1] == 0 and mc[1, 3] == 0
        assert mc.m.sum() == 2

    def test_increment_accumulates(self):
        mc = MatrixClock(3)
        mc.increment(0, [1])
        mc.increment(0, [1, 2])
        assert mc[0, 1] == 2 and mc[0, 2] == 1

    def test_merge_is_entrywise_max(self):
        a, b = MatrixClock(2), MatrixClock(2)
        a.increment(0, [0, 1])
        b.increment(1, [0])
        b.increment(0, [1])
        b.increment(0, [1])
        a.merge(b)
        assert a[0, 0] == 1 and a[0, 1] == 2 and a[1, 0] == 1

    def test_merge_laws(self):
        # join-semilattice: idempotent, commutative, monotone
        def mk(seed):
            rng = np.random.default_rng(seed)
            return MatrixClock(3, rng.integers(0, 5, size=(3, 3)))

        a, b = mk(1), mk(2)
        aa = a.copy()
        aa.merge(a)
        assert aa == a  # idempotent
        ab, ba = a.copy(), b.copy()
        ab.merge(b)
        ba.merge(a)
        assert ab == ba  # commutative
        assert ab.dominates(a) and ab.dominates(b)  # upper bound

    def test_copy_is_independent(self):
        a = MatrixClock(2)
        b = a.copy()
        b.increment(0, [0])
        assert a[0, 0] == 0 and b[0, 0] == 1

    def test_column_view(self):
        mc = MatrixClock(3)
        mc.increment(0, [2])
        mc.increment(1, [2])
        assert mc.column(2).tolist() == [1, 1, 0]

    def test_merge_dimension_mismatch(self):
        with pytest.raises(ValueError):
            MatrixClock(2).merge(MatrixClock(3))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MatrixClock(0)
        with pytest.raises(ValueError):
            MatrixClock(2, np.zeros((3, 3)))
        with pytest.raises(ValueError):
            MatrixClock(2, -np.ones((2, 2)))


class TestVectorClock:
    def test_increment_returns_new_value(self):
        vc = VectorClock(3)
        assert vc.increment(1) == 1
        assert vc.increment(1) == 2
        assert vc[1] == 2 and vc[0] == 0

    def test_merge_max(self):
        a, b = VectorClock(3), VectorClock(3)
        a.increment(0)
        b.increment(0)
        b.increment(0)
        b.increment(2)
        a.merge(b)
        assert a.v.tolist() == [2, 0, 1]

    def test_dominates(self):
        a = VectorClock(2, [3, 1])
        b = VectorClock(2, [2, 1])
        assert a.dominates(b)
        assert not b.dominates(a)
        assert a.dominates(a)

    def test_equality(self):
        assert VectorClock(2, [1, 2]) == VectorClock(2, [1, 2])
        assert VectorClock(2, [1, 2]) != VectorClock(2, [2, 1])

    def test_copy_independent(self):
        a = VectorClock(2)
        b = a.copy()
        b.increment(0)
        assert a[0] == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            VectorClock(0)
        with pytest.raises(ValueError):
            VectorClock(2, [1, 2, 3])
        with pytest.raises(ValueError):
            VectorClock(2, [-1, 0])
        with pytest.raises(ValueError):
            VectorClock(2).merge(VectorClock(3))
