"""Tests for the experiment sweep machinery, paper drivers, and reports."""

import math

import pytest

from repro.experiments.configs import EXPERIMENTS, bench_ops, bench_seeds
from repro.experiments.paper import (
    eq2_rows,
    fig1_rows,
    fig5_rows,
    full_avg_size_rows,
    partial_avg_size_rows,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.experiments.report import ascii_chart, csv_text, format_kv, format_table
from repro.experiments.sweep import averaged_cell, paired_runs

TINY = dict(ops_per_process=12, seeds=(0,))


class TestSweep:
    def test_averaged_cell_is_mean_of_seeds(self):
        single0 = averaged_cell("optp", 3, 0.5, ops_per_process=12, seeds=(0,))
        single1 = averaged_cell("optp", 3, 0.5, ops_per_process=12, seeds=(1,))
        both = averaged_cell("optp", 3, 0.5, ops_per_process=12, seeds=(0, 1))
        assert both["SM_count"] == pytest.approx(
            (single0["SM_count"] + single1["SM_count"]) / 2
        )
        assert both["n_runs"] == 2

    def test_averaged_cell_requires_seed(self):
        with pytest.raises(ValueError):
            averaged_cell("optp", 3, 0.5, ops_per_process=5, seeds=())

    def test_paired_runs_share_workload(self):
        runs = paired_runs(("opt-track", "opt-track-crp"), 4, 0.5,
                           ops_per_process=10, seed=3)
        a, b = runs["opt-track"].workload, runs["opt-track-crp"].workload
        assert a is b

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OPS", "77")
        monkeypatch.setenv("REPRO_BENCH_SEEDS", "3")
        assert bench_ops() == 77
        assert bench_seeds() == 3
        monkeypatch.delenv("REPRO_BENCH_OPS")
        assert bench_ops(42) == 42


class TestPaperDrivers:
    def test_fig1_shape(self):
        rows = fig1_rows(n_values=(3, 5), write_rates=(0.5,), **TINY)
        assert len(rows) == 2
        for row in rows:
            assert 0 < row["ratio"]
            assert row["opt_track_bytes"] > 0

    def test_fig1_ratio_decreases_with_n(self):
        rows = fig1_rows(n_values=(4, 12), write_rates=(0.5,),
                         ops_per_process=40, seeds=(0,))
        assert rows[1]["ratio"] < rows[0]["ratio"]

    def test_partial_avg_rows(self):
        rows = partial_avg_size_rows(0.5, n_values=(4,), **TINY)
        protos = {r["protocol"] for r in rows}
        assert protos == {"opt-track", "full-track"}
        ft = next(r for r in rows if r["protocol"] == "full-track")
        assert ft["sm_bytes"] > ft["fm_bytes"]

    def test_table2_rows(self):
        rows = table2_rows(n_values=(4,), write_rates=(0.5,), **TINY)
        assert len(rows) == 4  # 2 protocols x SM/RM
        assert all("n4" in r for r in rows)

    def test_fig5_ratio_below_one_at_larger_n(self):
        rows = fig5_rows(n_values=(12,), write_rates=(0.5,),
                         ops_per_process=40, seeds=(0,))
        assert rows[0]["ratio"] < 1.0

    def test_full_avg_rows_optp_exceeds_crp_at_scale(self):
        rows = full_avg_size_rows(0.5, n_values=(15,),
                                  ops_per_process=30, seeds=(0,))
        crp = next(r for r in rows if r["protocol"] == "opt-track-crp")
        optp = next(r for r in rows if r["protocol"] == "optp")
        assert crp["sm_bytes"] < optp["sm_bytes"]

    def test_table3_optp_column_linear(self):
        rows = table3_rows(n_values=(5, 10), write_rates=(0.5,), **TINY)
        from repro.metrics.sizing import DEFAULT_SIZE_MODEL as M

        assert rows[0]["optp"] == M.sm_optp(5)
        assert rows[1]["optp"] == M.sm_optp(10)

    def test_table4_matches_eq2_direction(self):
        rows = table4_rows(n_values=(5, 10), write_rates=(0.2, 0.8),
                           ops_per_process=60, seeds=(0,))
        n5 = rows[0]
        # paper: at n=5 partial loses at w_rate 0.2, wins at 0.8
        assert n5["partial_0.2"] > n5["full_0.2"]
        assert n5["partial_0.8"] < n5["full_0.8"]
        n10 = rows[1]
        assert n10["partial_0.2"] < n10["full_0.2"]

    def test_eq2_prediction_accuracy(self):
        rows = eq2_rows(n_values=(5, 10), write_rates=(0.1, 0.5),
                        ops_per_process=60, seeds=(0,))
        agree = [r for r in rows
                 if r["partial_wins_simulated"] == r["partial_wins_predicted"]]
        # sampling noise near the threshold is allowed; far from it the
        # prediction must hold (0.5 >> threshold for both n values)
        far = [r for r in rows if r["write_rate"] == 0.5]
        assert all(r["partial_wins_simulated"] for r in far)
        assert len(agree) >= len(rows) - 1


class TestExperimentSpecs:
    def test_all_paper_exhibits_present(self):
        for key in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                    "fig8", "table2", "table3", "table4", "eq2"):
            assert key in EXPERIMENTS

    def test_cells_iteration(self):
        spec = EXPERIMENTS["fig1"]
        cells = list(spec.cells())
        assert len(cells) == 2 * 5 * 3
        assert ("opt-track", 5, 0.2) in cells

    def test_partial_grids_use_paper_ns(self):
        assert EXPERIMENTS["table2"].n_values == (5, 10, 20, 30, 40)
        assert EXPERIMENTS["table3"].n_values == (5, 10, 20, 30, 35, 40)


class TestReportFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.125}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].endswith("bb")
        assert "10" in lines[3]
        assert "0.125" in lines[3]

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_csv_text(self):
        rows = [{"x": 1, "y": "hi"}]
        text = csv_text(rows)
        assert text.splitlines() == ["x,y", "1,hi"]

    def test_csv_empty(self):
        assert csv_text([]) == ""

    def test_ascii_chart_renders_series(self):
        chart = ascii_chart(
            {"quad": [(n, n * n) for n in range(1, 6)],
             "lin": [(n, n) for n in range(1, 6)]},
            title="growth", width=30, height=8,
        )
        assert "growth" in chart
        assert "o=quad" in chart and "x=lin" in chart
        assert chart.count("\n") > 8

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart({}, title="t")

    def test_ascii_chart_constant_series(self):
        chart = ascii_chart({"flat": [(0, 5.0), (1, 5.0)]})
        assert "o=flat" in chart

    def test_format_kv(self):
        text = format_kv({"alpha": 1, "b": 2.5})
        assert "alpha : 1" in text
        assert "b     : 2.500" in text
