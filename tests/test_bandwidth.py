"""Tests for the finite-bandwidth network model."""

import pytest

from repro import CausalCluster, ConstantLatency, SimulationConfig, run_simulation
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency as CL
from repro.sim.network import Network


def make_net(bandwidth=None, n=3, latency_ms=10.0):
    sim = Simulator()
    net = Network(sim, n, CL(latency_ms), bandwidth_bytes_per_ms=bandwidth)
    inbox = []
    for i in range(n):
        net.register(i, lambda src, msg, i=i: inbox.append((sim.now, i, msg)))
    return sim, net, inbox


class TestUplinkModel:
    def test_infinite_bandwidth_ignores_size(self):
        sim, net, inbox = make_net(bandwidth=None)
        net.send(0, 1, "big", size_bytes=1_000_000)
        sim.run()
        assert inbox[0][0] == pytest.approx(10.0)

    def test_transmission_time_added(self):
        sim, net, inbox = make_net(bandwidth=100.0)  # 100 B/ms
        net.send(0, 1, "m", size_bytes=500)          # 5 ms on the wire
        sim.run()
        assert inbox[0][0] == pytest.approx(15.0)    # 5 transmit + 10 latency

    def test_uplink_serializes_senders_messages(self):
        sim, net, inbox = make_net(bandwidth=100.0)
        net.send(0, 1, "a", size_bytes=500)   # occupies uplink 0-5
        net.send(0, 2, "b", size_bytes=500)   # must wait: departs at 5
        sim.run()
        times = {msg: t for t, _, msg in inbox}
        assert times["a"] == pytest.approx(15.0)
        assert times["b"] == pytest.approx(20.0)   # 5 queue + 5 transmit + 10

    def test_different_senders_do_not_queue_on_each_other(self):
        sim, net, inbox = make_net(bandwidth=100.0)
        net.send(0, 2, "a", size_bytes=500)
        net.send(1, 2, "b", size_bytes=500)
        sim.run()
        times = {msg: t for t, _, msg in inbox}
        assert times["a"] == pytest.approx(15.0)
        assert times["b"] == pytest.approx(15.0)

    def test_zero_size_costs_nothing(self):
        sim, net, inbox = make_net(bandwidth=100.0)
        net.send(0, 1, "m", size_bytes=0)
        sim.run()
        assert inbox[0][0] == pytest.approx(10.0)

    def test_uplink_idles_then_reuses(self):
        sim, net, inbox = make_net(bandwidth=100.0)
        net.send(0, 1, "a", size_bytes=100)   # uplink busy until t=1
        sim.run()
        net.send(0, 1, "b", size_bytes=100)   # uplink idle again
        sim.run()
        times = [t for t, _, _ in inbox]
        assert times[0] == pytest.approx(11.0)
        assert times[1] == pytest.approx(sim.now)  # 11 + 1 + 10 = 22
        assert times[1] == pytest.approx(22.0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Network(Simulator(), 2, bandwidth_bytes_per_ms=0.0)
        with pytest.raises(ValueError):
            Network(Simulator(), 2, bandwidth_bytes_per_ms=-5.0)

    def test_fifo_still_holds_under_bandwidth(self):
        sim, net, inbox = make_net(bandwidth=50.0)
        for k in range(10):
            net.send(0, 1, k, size_bytes=100 * (10 - k))  # shrinking sizes
        sim.run()
        msgs = [m for _, _, m in inbox]
        assert msgs == list(range(10))


class TestBandwidthEndToEnd:
    def test_fat_metadata_slows_visibility(self):
        """Full-Track's n^2 matrices cost real time under constrained
        uplinks; Opt-Track's pruned logs cost much less."""
        lags = {}
        for protocol in ("full-track", "opt-track"):
            cfg = SimulationConfig(
                protocol=protocol, n_sites=10, write_rate=0.5,
                ops_per_process=40, seed=0,
                latency=ConstantLatency(10.0),
                bandwidth_bytes_per_ms=50.0,   # 50 KB/s uplinks
                warmup_fraction=0.0,
            )
            result = run_simulation(cfg)
            lags[protocol] = result.collector.visibility_lags.mean
        assert lags["opt-track"] < lags["full-track"]

    def test_infinite_bandwidth_matches_default(self):
        base = SimulationConfig(protocol="optp", n_sites=4, ops_per_process=25,
                                seed=3, latency=ConstantLatency(10.0))
        a = run_simulation(base).summary()
        b = run_simulation(
            SimulationConfig(protocol="optp", n_sites=4, ops_per_process=25,
                             seed=3, latency=ConstantLatency(10.0),
                             bandwidth_bytes_per_ms=None)
        ).summary()
        assert a == b

    def test_cluster_accepts_bandwidth_and_stays_causal(self):
        c = CausalCluster(4, protocol="opt-track", n_vars=8,
                          replication_factor=2,
                          latency=ConstantLatency(5.0),
                          bandwidth_bytes_per_ms=20.0)
        for k in range(10):
            c.write(k % 4, k % 8, k)
            c.advance(30.0)
        c.settle()
        c.check().raise_if_violated()

    def test_counts_unaffected_by_bandwidth(self):
        cfgs = [
            SimulationConfig(protocol="opt-track", n_sites=5, ops_per_process=30,
                             seed=1, bandwidth_bytes_per_ms=bw,
                             warmup_fraction=0.0)
            for bw in (None, 10.0)
        ]
        counts = [run_simulation(c).collector.total_message_count for c in cfgs]
        assert counts[0] == counts[1]
