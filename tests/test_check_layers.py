"""Seeded-injection tests for the layer-contract checker (LAY001..003).

Same synthetic-package approach as ``test_check_effects``: plant a
layer violation, assert the checker reports it; show the sanctioned
crossings (may_import, ports of each kind) stay clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.check.callgraph import ProjectGraph
from repro.check.contract import Contract, ContractError
from repro.check.layers import check_layers

BASE_FILES = {
    "app/__init__.py": "",
    "app/core/__init__.py": "",
    "app/sim/__init__.py": "",
}


def build(tmp_path: Path, files: dict[str, str]) -> ProjectGraph:
    for rel, src in {**BASE_FILES, **files}.items():
        p = tmp_path / "src" / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    return ProjectGraph.build(tmp_path / "src", "app")


def make_contract(ports=(), core_may_import=(), catch_all=True) -> Contract:
    layers = {
        "core": {"modules": ["app.core"],
                 "may_import": list(core_may_import)},
        "sim": {"modules": ["app.sim"], "may_import": ["core"]},
    }
    if catch_all:
        layers["harness"] = {"modules": ["app"], "may_import": ["*"]}
    return Contract.from_dict({
        "project": {"package": "app"},
        "layers": layers,
        "ports": list(ports),
    })


def run(tmp_path, files, **kw):
    return check_layers(build(tmp_path, files), make_contract(**kw))


CORE_USES_SIM = {
    "app/sim/engine.py": "class Simulator:\n    pass\n",
    "app/core/proto.py": """
        from app.sim.engine import Simulator

        def boot():
            return Simulator()
    """,
}


class TestLay001:
    def test_undeclared_crossing_flagged(self, tmp_path):
        findings = run(tmp_path, CORE_USES_SIM)
        assert [f.code for f in findings] == ["LAY001"]
        assert "app.sim.engine" in findings[0].message
        assert findings[0].line == 2  # the import line

    def test_may_import_allows(self, tmp_path):
        findings = run(tmp_path, CORE_USES_SIM, core_may_import=["sim"])
        assert findings == []

    def test_sanctioned_port_allows(self, tmp_path):
        findings = run(tmp_path, CORE_USES_SIM, ports=[{
            "importer": "app.core", "imported": "app.sim",
            "kind": "sanctioned", "reason": "reviewed crossing",
        }])
        assert findings == []

    def test_sim_may_import_core(self, tmp_path):
        findings = run(tmp_path, {
            "app/core/proto.py": "class Proto:\n    pass\n",
            "app/sim/engine.py": """
                from app.core.proto import Proto

                def host():
                    return Proto()
            """,
        })
        assert findings == []

    def test_typing_only_crossing_still_needs_port(self, tmp_path):
        findings = run(tmp_path, {
            "app/sim/engine.py": "class Simulator:\n    pass\n",
            "app/core/proto.py": """
                from __future__ import annotations

                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from app.sim.engine import Simulator

                def boot(sim: Simulator) -> None:
                    sim.step()
            """,
        })
        assert [f.code for f in findings] == ["LAY001"]
        assert "typing-only" in findings[0].message

    def test_forbidden_stdlib_import(self, tmp_path):
        graph = build(tmp_path, {
            "app/core/proto.py": """
                import time

                def stamp() -> float:
                    return time.monotonic()
            """,
        })
        contract = Contract.from_dict({
            "project": {"package": "app"},
            "layers": {
                "core": {"modules": ["app.core"], "may_import": [],
                         "forbidden_stdlib": ["time", "random"]},
                "harness": {"modules": ["app"], "may_import": ["*"]},
            },
        })
        findings = check_layers(graph, contract)
        assert [f.code for f in findings] == ["LAY001"]
        assert "'time'" in findings[0].message


class TestLay002:
    PORT = [{
        "importer": "app.core", "imported": "app.sim",
        "kind": "annotation-only", "reason": "type annotations only",
    }]

    def test_runtime_use_of_annotation_port(self, tmp_path):
        findings = run(tmp_path, CORE_USES_SIM, ports=self.PORT)
        assert [f.code for f in findings] == ["LAY002"]
        assert "Simulator" in findings[0].message

    def test_annotation_only_use_passes(self, tmp_path):
        findings = run(tmp_path, {
            "app/sim/engine.py": "class Simulator:\n    pass\n",
            "app/core/proto.py": """
                from __future__ import annotations

                from app.sim.engine import Simulator

                def boot(sim: Simulator) -> None:
                    sim.step()
            """,
        }, ports=self.PORT)
        assert findings == []

    def test_type_checking_block_passes(self, tmp_path):
        findings = run(tmp_path, {
            "app/sim/engine.py": "class Simulator:\n    pass\n",
            "app/core/proto.py": """
                from __future__ import annotations

                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from app.sim.engine import Simulator

                def boot(sim: Simulator) -> None:
                    sim.step()
            """,
        }, ports=self.PORT)
        assert findings == []


class TestLay003:
    def test_unassigned_module_flagged(self, tmp_path):
        findings = run(tmp_path, {
            "app/core/proto.py": "",
        }, catch_all=False)
        # app/__init__, app/sim/__init__ fall outside core+sim... no:
        # app.sim matches the sim layer; app and app.core.* are covered
        # except the bare "app" package itself
        codes = {f.code for f in findings}
        assert codes == {"LAY003"}
        assert any("app is not assigned" in f.message for f in findings)

    def test_catch_all_assigns_everything(self, tmp_path):
        findings = run(tmp_path, {"app/core/proto.py": ""})
        assert findings == []

    def test_longest_prefix_wins(self, tmp_path):
        graph = build(tmp_path, {
            "app/core/proto.py": "",
            "app/core/shim.py": """
                from app.sim.engine import Simulator

                def host():
                    return Simulator()
            """,
            "app/sim/engine.py": "class Simulator:\n    pass\n",
        })
        contract = Contract.from_dict({
            "project": {"package": "app"},
            "layers": {
                "core": {"modules": ["app.core"], "may_import": []},
                "sim": {"modules": ["app.sim"], "may_import": ["core"]},
                # the shim is explicitly re-homed into the harness,
                # overriding the shorter app.core prefix
                "harness": {"modules": ["app", "app.core.shim"],
                            "may_import": ["*"]},
            },
        })
        findings = check_layers(graph, contract)
        assert findings == []


class TestContractValidation:
    def test_unknown_port_kind_rejected(self):
        with pytest.raises(ContractError, match="unknown kind"):
            make_contract(ports=[{
                "importer": "app.core", "imported": "app.sim",
                "kind": "wishful", "reason": "nope",
            }])

    def test_port_requires_reason(self):
        with pytest.raises(ContractError, match="no reason"):
            make_contract(ports=[{
                "importer": "app.core", "imported": "app.sim",
                "kind": "sanctioned",
            }])

    def test_unknown_may_import_rejected(self):
        with pytest.raises(ContractError, match="unknown layer"):
            Contract.from_dict({
                "layers": {
                    "core": {"modules": ["app.core"],
                             "may_import": ["nonexistent"]},
                },
            })

    def test_layer_without_modules_rejected(self):
        with pytest.raises(ContractError, match="no modules"):
            Contract.from_dict({"layers": {"core": {}}})

    def test_toml_load_round_trip(self, tmp_path):
        toml = tmp_path / "layers.toml"
        toml.write_text(textwrap.dedent("""
            [project]
            package = "app"

            [layers.core]
            modules = ["app.core"]
            may_import = []

            [[ports]]
            importer = "app.core"
            imported = "app.sim"
            kind = "data-only"
            reason = "vocabulary"

            [effects]
            pure_trees = ["app.core"]
            forbidden = ["WALL_CLOCK"]
        """))
        contract = Contract.load(toml)
        assert contract.package == "app"
        assert contract.layers["core"].modules == ("app.core",)
        assert contract.ports[0].kind == "data-only"
        assert contract.pure_trees == ("app.core",)

    def test_suppression_silences_layer_finding(self, tmp_path):
        findings = run(tmp_path, {
            "app/sim/engine.py": "class Simulator:\n    pass\n",
            "app/core/proto.py": """
                # simcheck: ignore[LAY001] -- transitional, tracked in #42
                from app.sim.engine import Simulator

                def boot():
                    return Simulator()
            """,
        })
        assert findings == []
