"""Message-level ordering tests: constructed out-of-order deliveries.

These bypass the network and push messages directly into protocol
instances, pinning down the exact buffering/cascade behaviour of each
activation predicate — the kind of interleaving that random simulation
hits only occasionally.
"""

import numpy as np
import pytest

from repro.core.base import ProtocolContext, create_protocol
from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import PiggybackEntry
from repro.core.messages import (
    CRPSM,
    FetchMessage,
    FullTrackSM,
    OptPSM,
    OptTrackRM,
    OptTrackSM,
)
from repro.memory.replication import RoundRobinPlacement, full_replication
from repro.memory.store import SiteStore, WriteId
from repro.metrics.collector import MetricsCollector
from repro.metrics.sizing import DEFAULT_SIZE_MODEL
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency, Network


def make_proto(name, site=1, n=3, placement=None):
    placement = placement or full_replication(n, 4)
    sim = Simulator()
    net = Network(sim, n, ConstantLatency(5.0))
    ctx = ProtocolContext(
        site=site, n_sites=n, placement=placement,
        store=SiteStore(site, placement.vars_at(site)),
        network=net, clock=sim, collector=MetricsCollector(),
        size_model=DEFAULT_SIZE_MODEL,
    )
    proto = create_protocol(name, ctx)
    net.register(site, proto.on_message)
    return proto, ctx


class TestOptPOrdering:
    def test_reversed_fifo_pair_buffers_then_cascades(self):
        proto, ctx = make_proto("optp")
        m1 = OptPSM(0, "a", WriteId(0, 1), VectorClock(3, [1, 0, 0]))
        m2 = OptPSM(0, "b", WriteId(0, 2), VectorClock(3, [2, 0, 0]))
        proto.on_message(0, m2)
        assert ctx.store.read(0).value is None
        proto.on_message(0, m1)
        assert ctx.store.read(0).value == "b"
        assert proto.pending_count == 0

    def test_cross_writer_dependency_buffers(self):
        proto, ctx = make_proto("optp")
        # writer 2's update depends on writer 0's first write
        dep = OptPSM(1, "y", WriteId(2, 1), VectorClock(3, [1, 0, 1]))
        proto.on_message(2, dep)
        assert proto.pending_count == 1
        base = OptPSM(0, "x", WriteId(0, 1), VectorClock(3, [1, 0, 0]))
        proto.on_message(0, base)
        assert proto.pending_count == 0
        assert ctx.store.read(1).value == "y"

    def test_independent_writers_never_block(self):
        proto, ctx = make_proto("optp")
        for writer in (0, 2):
            vec = VectorClock(3)
            vec.increment(writer)
            proto.on_message(writer, OptPSM(writer, f"w{writer}",
                                            WriteId(writer, 1), vec))
        assert proto.pending_count == 0


class TestCRPOrdering:
    def test_three_site_chain_reversed(self):
        proto, ctx = make_proto("opt-track-crp")
        # chain: (0,1) -> (2,1) -> (0,2); delivered in reverse
        m1 = CRPSM(0, "a", WriteId(0, 1), ())
        m2 = CRPSM(1, "b", WriteId(2, 1), ((0, 1),))
        m3 = CRPSM(2, "c", WriteId(0, 2), ((2, 1),))
        proto.on_message(0, m3)
        proto.on_message(2, m2)
        assert proto.pending_count == 2
        proto.on_message(0, m1)
        assert proto.pending_count == 0
        assert proto.applied == [2, 0, 1]


class TestFullTrackOrdering:
    def test_partial_dest_sets_gate_correctly(self):
        # site 1 replicates vars {0,1,4,5...} under RoundRobin(3,4,2)?
        placement = RoundRobinPlacement(3, 3, 2)  # var v at {v, v+1 mod 3}
        proto, ctx = make_proto("full-track", site=1, n=3, placement=placement)
        # writer 0 writes var 0 (dests {0,1}) then var 1 (dests {1,2});
        # both destined to site 1; deliver in reverse
        m_a = MatrixClock(3)
        m_a.increment(0, [0, 1])
        sm_a = FullTrackSM(0, "a", WriteId(0, 1), m_a)
        m_b = m_a.copy()
        m_b.increment(0, [1, 2])
        sm_b = FullTrackSM(1, "b", WriteId(0, 2), m_b)
        proto.on_message(0, sm_b)
        assert proto.pending_count == 1  # waits for the first write
        proto.on_message(0, sm_a)
        assert proto.pending_count == 0
        assert ctx.store.read(0).value == "a"
        assert ctx.store.read(1).value == "b"

    def test_write_not_destined_here_never_gates(self):
        placement = RoundRobinPlacement(3, 3, 1)  # var v at site v only
        proto, ctx = make_proto("full-track", site=1, n=3, placement=placement)
        # writer 0 wrote var 2 (destined only to site 2), then var 1
        m = MatrixClock(3)
        m.increment(0, [2])
        m.increment(0, [1])
        sm = FullTrackSM(1, "v", WriteId(0, 1), m)
        proto.on_message(0, sm)
        assert proto.pending_count == 0  # var-2 write is irrelevant here
        assert ctx.store.read(1).value == "v"


class TestOptTrackOrdering:
    def setup_method(self):
        self.placement = RoundRobinPlacement(3, 3, 1)  # var v at site v

    def test_sm_gated_by_piggybacked_record(self):
        proto, ctx = make_proto("opt-track", site=1, n=3,
                                placement=self.placement)
        # writer 0's second write (to var 1) depends on its first (also
        # var 1, clock 1): record names site 1
        dep_entry = PiggybackEntry(0, 1, frozenset({1}))
        sm2 = OptTrackSM(1, "second", WriteId(0, 2), (dep_entry,))
        proto.on_message(0, sm2)
        assert proto.pending_count == 1
        sm1 = OptTrackSM(1, "first", WriteId(0, 1), ())
        proto.on_message(0, sm1)
        assert proto.pending_count == 0
        assert ctx.store.read(1).value == "second"

    def test_record_for_other_site_ignored(self):
        proto, ctx = make_proto("opt-track", site=1, n=3,
                                placement=self.placement)
        foreign = PiggybackEntry(0, 1, frozenset({2}))  # gates site 2, not 1
        sm = OptTrackSM(1, "v", WriteId(0, 2), (foreign,))
        proto.on_message(0, sm)
        assert proto.pending_count == 0
        assert ctx.store.read(1).value == "v"

    def test_rm_gated_until_dependency_applied(self):
        proto, ctx = make_proto("opt-track", site=1, n=3,
                                placement=self.placement)
        # remote read of var 2 is outstanding; the RM's log says the
        # fetched value depends on write (0,1) destined to site 1
        results = []
        proto.read(2, lambda v, wid, remote: results.append(v))
        (req_id,) = proto._fetches.keys()
        rm = OptTrackRM(
            var=2, value="fetched", write_id=WriteId(2, 1),
            log=(PiggybackEntry(0, 1, frozenset({1})),),
            request_id=req_id,
        )
        proto.on_message(2, rm)
        assert results == []           # gated
        assert proto.pending_count == 2  # buffered RM + outstanding fetch
        proto.on_message(0, OptTrackSM(1, "dep", WriteId(0, 1), ()))
        assert results == ["fetched"]  # cascade completed the read
        assert proto.pending_count == 0

    def test_fm_gated_until_requirement_applied(self):
        proto, ctx = make_proto("opt-track", site=1, n=3,
                                placement=self.placement)
        net_sent = []
        ctx.network.register(2, lambda s, m: net_sent.append(m))
        fm = FetchMessage(var=1, reader=2, request_id=7,
                          requirements=((0, 1),))
        proto.on_message(2, fm)
        assert proto.pending_count == 1  # held: requirement unmet
        proto.on_message(0, OptTrackSM(1, "dep", WriteId(0, 1), ()))
        assert proto.pending_count == 0
        ctx.clock.run()
        assert len(net_sent) == 1      # the RM finally went out
        assert net_sent[0].value == "dep"
