"""Live TCP smoke test: real node processes, real sockets, real checker.

Spawns a 3-node cluster as OS subprocesses (the exact ``repro _node``
path ``repro serve`` uses), drives it with the seeded load generator
over HTTP, and requires a violation-free merged history.  Everything
binds to 127.0.0.1 on OS-assigned free ports.
"""

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.service.bootstrap import (
    ClusterTopology,
    NodeSpec,
    save_topology,
)
from repro.service.loadgen import run_loadgen

N_SITES = 3


def _free_ports(count):
    socks, ports = [], []
    for _ in range(count):
        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        socks.append(s)
        ports.append(s.getsockname()[1])
    for s in socks:
        s.close()
    return ports


@pytest.fixture
def live_cluster(tmp_path):
    ports = _free_ports(2 * N_SITES)
    topology = ClusterTopology(
        protocol="opt-track",
        n_vars=6,
        nodes=tuple(
            NodeSpec(site=i, host="127.0.0.1",
                     peer_port=ports[i], http_port=ports[N_SITES + i])
            for i in range(N_SITES)
        ),
        history_dir=str(tmp_path),
    )
    topo_path = tmp_path / "topology.json"
    save_topology(topology, topo_path)
    # child processes must import the same `repro` this test did,
    # whether it came from an install or PYTHONPATH=src
    env = os.environ.copy()
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (pkg_root, env.get("PYTHONPATH")) if p
    )
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "_node",
             "--topology", str(topo_path), "--site", str(i)],
            stdout=(tmp_path / f"node-{i}.log").open("w"),
            stderr=subprocess.STDOUT,
            env=env,
        )
        for i in range(N_SITES)
    ]
    try:
        deadline = time.monotonic() + 20.0
        ready = 0
        while time.monotonic() < deadline and ready < N_SITES:
            ready = 0
            for spec in topology.nodes:
                try:
                    with socket.create_connection(
                        (spec.host, spec.http_port), timeout=0.2
                    ):
                        ready += 1
                except OSError:
                    break
            if ready < N_SITES:
                if any(p.poll() is not None for p in procs):
                    logs = "\n".join(
                        (tmp_path / f"node-{i}.log").read_text()
                        for i in range(N_SITES)
                    )
                    pytest.fail(f"node process died during startup:\n{logs}")
                time.sleep(0.1)
        assert ready == N_SITES, "cluster did not come up in 20s"
        yield topology
    finally:
        for p in procs:
            p.terminate()
        for p in procs:
            try:
                p.wait(timeout=5)
            except subprocess.TimeoutExpired:
                p.kill()


def _http(host, port, method, path, body=b""):
    with socket.create_connection((host, port), timeout=5.0) as s:
        s.sendall(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            .encode("ascii") + body
        )
        raw = b""
        while chunk := s.recv(65536):
            raw += chunk
    head, _, rest = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), rest


class TestLiveCluster:
    def test_put_then_causal_get_across_nodes(self, live_cluster):
        spec0 = live_cluster.node(0)
        spec1 = live_cluster.node(1)
        status, body = _http(
            spec0.host, spec0.http_port, "PUT", "/kv/0",
            json.dumps({"value": 41}).encode(),
        )
        assert status == 200, body
        wid = json.loads(body)["write_id"]
        status, body = _http(spec1.host, spec1.http_port, "GET", "/kv/0")
        assert status == 200, body
        reply = json.loads(body)
        assert reply["value"] == 41
        assert reply["write_id"] == wid

    def test_status_and_api_errors(self, live_cluster):
        spec = live_cluster.node(2)
        status, body = _http(spec.host, spec.http_port, "GET", "/status")
        assert status == 200
        data = json.loads(body)
        assert data["site"] == 2 and data["protocol"] == "opt-track"
        status, _ = _http(spec.host, spec.http_port, "GET", "/kv/999")
        assert status == 404
        status, _ = _http(
            spec.host, spec.http_port, "PUT", "/kv/0", b"not json"
        )
        assert status == 400

    def test_loadgen_history_is_causally_consistent(self, live_cluster):
        report = run_loadgen(live_cluster, ops=30, seed=5)
        assert report.quiesced, report.errors
        assert not report.errors
        assert not report.violations
        assert report.writes > 0 and report.reads > 0
        assert report.events > 0
        # per-node JSONL histories were streamed to disk too
        for site in range(N_SITES):
            path = live_cluster.history_path(site)
            assert path.exists() and path.read_text().strip()
