"""Behavioral tests of protocol internals.

These go below the public read/write API and assert the mechanics the
paper describes: merge-on-read (not on receipt), condition-1/2 pruning,
log resets, the d+1 bound, FIFO+dependency activation, and the gating of
remote-read returns under partial replication.
"""

import numpy as np
import pytest

from repro import CausalCluster, ConstantLatency, PerPairLatency
from repro.memory.store import BOTTOM


def make(protocol, n=3, p=None, n_vars=6, latency=None):
    return CausalCluster(
        n,
        protocol=protocol,
        n_vars=n_vars,
        replication_factor=p,
        latency=latency or ConstantLatency(10.0),
    )


class TestFullTrackInternals:
    def test_write_increments_own_row_for_destinations(self):
        c = make("full-track", n=4, p=2)
        var = 1  # replicas {1, 2}
        c.write(0, var, "v")
        m = c.protocols[0].write_clock
        assert m[0, 1] == 1 and m[0, 2] == 1
        assert m[0, 0] == 0 and m[0, 3] == 0

    def test_receipt_does_not_merge_clock(self):
        # ->co tracking: receiving (even applying) an update must NOT
        # advance the receiver's Write clock — only reading the value does
        c = make("full-track", n=3, p=2)
        c.write(0, 0, "v")  # replicas {0, 1}
        c.settle()
        receiver = c.protocols[1]
        assert receiver.write_clock.m.sum() == 0  # applied but not merged
        c.read(1, 0)
        assert receiver.write_clock[0, 0] == 1
        assert receiver.write_clock[0, 1] == 1

    def test_last_write_on_stores_piggybacked_matrix(self):
        c = make("full-track", n=3, p=2)
        c.write(0, 0, "v")
        c.settle()
        wid, matrix = c.protocols[1].last_write_on[0]
        assert wid.site == 0 and wid.clock == 1
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1

    def test_apply_counts_track_writers(self):
        c = make("full-track", n=3, p=3)
        c.write(0, 0, "a")
        c.write(1, 1, "b")
        c.settle()
        assert c.protocols[2].applied == [1, 1, 0]


class TestOptTrackInternals:
    def test_log_gains_entry_per_write(self):
        c = make("opt-track", n=4, p=2)
        c.write(0, 0, "v")  # replicas {0, 1}
        log = c.protocols[0].log
        assert (0, 1) in log
        # own site excluded from the stored record (applied locally)
        assert log.dests_of(0, 1) == {1}

    def test_condition_two_prunes_on_next_write(self):
        c = make("opt-track", n=4, p=2)
        c.write(0, 0, "a")        # record (0,1) with dests {1}
        c.write(0, 1, "b")        # write to replicas {1, 2}: strips 1
        log = c.protocols[0].log
        assert (0, 1) not in log  # emptied and superseded by (0,2)
        assert log.dests_of(0, 2) == {1, 2}

    def test_receiver_strips_itself_from_stored_log(self):
        c = make("opt-track", n=4, p=3)
        c.write(0, 0, "a")  # replicas {0,1,2}
        c.settle()
        wid, wdests, piggy = c.protocols[1].last_write_on[0]
        assert 1 not in wdests  # condition 1 at the applying site
        assert wdests == {2}   # 0 excluded at writer, 1 excluded here

    def test_read_merges_write_entry_into_log(self):
        c = make("opt-track", n=4, p=3)
        c.write(0, 0, "a")
        c.settle()
        reader = c.protocols[1]
        assert len(reader.log) == 0
        c.read(1, 0)
        assert (0, 1) in reader.log
        assert reader.log.dests_of(0, 1) == {2}  # only 2 still unconfirmed

    def test_applied_tracks_highest_clock(self):
        c = make("opt-track", n=3, p=3)
        for k in range(3):
            c.write(0, 0, k)
            c.settle()
        assert c.protocols[2].applied[0] == 3

    def test_fifo_assertion_guards_regression(self):
        c = make("opt-track", n=3, p=3)
        c.write(0, 0, "a")
        c.settle()
        proto = c.protocols[1]
        from repro.core.messages import OptTrackSM
        from repro.memory.store import WriteId

        stale = OptTrackSM(var=0, value="x", write_id=WriteId(0, 1), log=())
        with pytest.raises(AssertionError, match="FIFO"):
            proto._apply_sm(0, stale)


class TestCRPInternals:
    def test_log_resets_after_write(self):
        c = make("opt-track-crp", n=3)
        c.write(0, 0, "a")
        c.settle()
        c.read(1, 0)
        writer_log = c.protocols[1].log
        c.write(1, 1, "b")
        assert writer_log.entries() == ((1, 1),)  # singleton: own write

    def test_write_piggybacks_pre_reset_dependencies(self):
        c = make("opt-track-crp", n=3)
        c.write(0, 0, "a")
        c.settle()
        c.read(1, 0)              # log at 1: {(0,1)}
        c.write(1, 1, "b")        # must piggyback the (0,1) dependency
        c.settle()
        # receiver 2 applied "b" only after "a": check apply order
        applies = [(e.site, e.write_id) for e in c.history.applies_at(2)]
        assert applies.index((2, (0, 1))) < applies.index((2, (1, 1)))

    def test_log_bounded_by_d_plus_one(self):
        c = make("opt-track-crp", n=4, n_vars=8)
        # interleave writes from several sites, then read d distinct vars
        for k in range(4):
            c.write(k, k, k)
            c.settle()
        c.write(3, 7, "w")  # resets site 3's log to 1 entry
        c.settle()
        d = 0
        for var in range(3):
            c.read(3, var)
            d += 1
            assert len(c.protocols[3].log) <= d + 1

    def test_reads_of_same_writer_keep_one_entry(self):
        c = make("opt-track-crp", n=3, n_vars=6)
        c.write(0, 1, "a")
        c.settle()
        c.write(0, 2, "b")
        c.settle()
        c.write(1, 3, "c")  # reset site 1's log
        c.settle()
        c.read(1, 1)
        c.read(1, 2)  # same writing site: subsumes the first entry
        log = c.protocols[1].log
        assert log.clock_of(0) == 2
        assert len(log) == 2  # own write + one entry for writer 0

    def test_no_fetch_traffic(self):
        from repro.metrics.collector import MessageKind

        c = make("opt-track-crp", n=3)
        c.write(0, 0, "a")
        c.settle()
        c.read(2, 0)
        assert c.collector.tally(MessageKind.FM).lifetime_count == 0
        assert c.collector.tally(MessageKind.RM).lifetime_count == 0


class TestOptPInternals:
    def test_receipt_does_not_merge_vector(self):
        c = make("optp", n=3)
        c.write(0, 0, "v")
        c.settle()
        receiver = c.protocols[1]
        assert receiver.write_clock.v.tolist() == [0, 0, 0]
        c.read(1, 0)
        assert receiver.write_clock.v.tolist() == [1, 0, 0]

    def test_vector_piggyback_includes_read_dependencies(self):
        c = make("optp", n=3)
        c.write(0, 0, "a")
        c.settle()
        c.read(1, 0)
        c.write(1, 1, "b")
        proto = c.protocols[1]
        _, vec = proto.last_write_on[1]
        assert vec.v.tolist() == [1, 1, 0]

    def test_fifo_apply_counts(self):
        c = make("optp", n=3)
        for k in range(3):
            c.write(0, 0, k)
        c.settle()
        assert c.protocols[2].applied == [3, 0, 0]


class TestRemoteReadGating:
    """A fetched value's causal dependencies destined to the reader must
    be applied before the read completes (DESIGN.md design decision)."""

    @pytest.mark.parametrize("protocol", ["opt-track", "full-track"])
    def test_rm_blocks_until_dependency_applied(self, protocol):
        # sites: 0 writes var2 (lives at 2) then var1 (lives at 1);
        # channel 0->2 is very slow, everything else fast.  Site 2 then
        # remote-reads var1: the returned value causally depends on the
        # write to var2, destined to site 2 but still in flight -> the
        # read must not complete before it is applied.
        lat = [
            [0.0, 5.0, 500.0],
            [5.0, 0.0, 5.0],
            [5.0, 5.0, 0.0],
        ]
        c = CausalCluster(
            3, protocol=protocol, n_vars=3, replication_factor=1,
            latency=PerPairLatency(lat),
        )
        c.write(0, 2, "dep")     # SM 0->2, arrives at t~500
        c.advance(1.0)
        c.write(0, 1, "val")     # SM 0->1, arrives fast, carries the dep
        c.advance(50.0)          # plenty for everything except 0->2
        value, _ = c.read_with_id(2, 1)   # fetch 2->1, gated RM back
        assert value == "val"
        # by completion, the dependency must have been applied locally
        assert c.read(2, 2) == "dep"
        assert c.now >= 500.0    # the read had to wait for the slow SM
        c.settle()
        c.check().raise_if_violated()

    def test_unwritten_variable_remote_read_returns_bottom(self):
        c = CausalCluster(3, protocol="opt-track", n_vars=3,
                          replication_factor=1, latency=ConstantLatency(5.0))
        assert c.read(0, 2) is BOTTOM

    @pytest.mark.parametrize("protocol", ["opt-track", "full-track"])
    def test_fetch_gated_on_readers_own_write(self, protocol):
        # Regression for the soundness gap described in DESIGN.md: site 0
        # writes var1 (replicated only at site 1) while site 1 has that
        # SM buffered behind a slow dependency; site 0 then remote-reads
        # var1.  Without FM requirement gating, site 1 answers with the
        # stale pre-write value (here bottom) — a causal violation.
        lat = [
            [0.0, 5.0, 5.0],
            [5.0, 0.0, 5.0],
            [5.0, 900.0, 5.0],   # site2 -> site1 very slow
        ]
        c = CausalCluster(3, protocol=protocol, n_vars=3, replication_factor=1,
                          latency=PerPairLatency(lat))
        c.write(2, 1, "dep")       # slow SM 2->1
        c.advance(1.0)
        c.write(2, 0, "z")         # fast SM 2->0
        c.advance(50.0)
        assert c.read(0, 0) == "z"     # site 0 now causally knows "dep"
        c.write(0, 1, "mine")          # SM 0->1 buffers behind "dep"
        c.advance(50.0)
        assert c.read(0, 1) == "mine"  # gated serve: never the stale value
        c.settle()
        c.check().raise_if_violated()

    @pytest.mark.parametrize("protocol", ["opt-track", "full-track"])
    def test_fetch_requirements_cover_latest_own_write(self, protocol):
        c = CausalCluster(4, protocol=protocol, n_vars=4, replication_factor=2,
                          latency=ConstantLatency(5.0))
        # write a variable this site does not replicate, twice
        var = next(v for v in range(4)
                   if not c.placement.is_replicated_at(v, 0))
        c.write(0, var, "a")
        c.write(0, var, "b")
        target = c.placement.fetch_site(var, 0)
        reqs = dict(c.protocols[0]._fetch_requirements(var, target))
        # the latest own write must be among the requirements
        if protocol == "opt-track":
            assert reqs.get(0) == 2          # own clock of write "b"
        else:
            assert reqs.get(0) == 2          # two writes destined to target
