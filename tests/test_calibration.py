"""Tests for the size-model calibration tooling."""

import numpy as np
import pytest

from repro.analysis.calibration import (
    PAPER_FULL_TRACK_SM_REFERENCE,
    PAPER_OPTP_REFERENCE,
    fit_full_track_envelope,
    fit_linear,
    fit_optp_envelope,
    verify_default_calibration,
)
from repro.metrics.sizing import DEFAULT_SIZE_MODEL, SizeModel


class TestFitLinear:
    def test_exact_line_recovered(self):
        fit = fit_linear([1, 2, 3, 4], [12, 14, 16, 18])
        assert fit.intercept == pytest.approx(10.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.residual_rms == pytest.approx(0.0, abs=1e-9)

    def test_prediction(self):
        fit = fit_linear([0, 10], [5, 25])
        assert fit.predict(5) == pytest.approx(15.0)

    def test_noise_reported(self):
        rng = np.random.default_rng(0)
        xs = np.arange(20.0)
        ys = 3.0 + 2.0 * xs + rng.normal(0, 0.5, 20)
        fit = fit_linear(xs, ys)
        assert fit.slope == pytest.approx(2.0, abs=0.1)
        assert fit.residual_rms > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_linear([1], [2])
        with pytest.raises(ValueError):
            fit_linear([1, 2], [1, 2, 3])


class TestPaperFits:
    def test_optp_fit_is_exact_209_plus_10n(self):
        fit = fit_optp_envelope()
        assert fit.intercept == pytest.approx(209.0, abs=1e-6)
        assert fit.slope == pytest.approx(10.0, abs=1e-6)
        assert fit.max_relative_error < 1e-9

    def test_full_track_fit_near_8_bytes_per_cell(self):
        fit = fit_full_track_envelope()
        assert fit.slope == pytest.approx(8.0, rel=0.25)
        assert 0 < fit.intercept < 600
        # the paper's sizes carry a linear component on top of the pure
        # quadratic (serialization per-row overhead), so the one-term fit
        # leaves real residuals at small n
        assert fit.max_relative_error < 0.3

    def test_defaults_match_fits(self):
        # the shipped constants are the fitted values (optP exactly; the
        # Full-Track envelope rounded to anchor the n=5 cell)
        opt = fit_optp_envelope()
        m = DEFAULT_SIZE_MODEL
        assert m.sm_optp(5) == pytest.approx(opt.predict(5))
        assert m.sm_optp(40) == pytest.approx(opt.predict(40))
        ft = fit_full_track_envelope()
        # at large n the quadratic term dominates and the shipped model
        # agrees with the fit; at small n the model anchors the paper's
        # n=5 cell directly instead (see verify_default_calibration)
        assert m.sm_full_track(40) == pytest.approx(ft.predict(1600), rel=0.08)


class TestCalibrationContract:
    def test_default_model_errors(self):
        errors = verify_default_calibration()
        for key, err in errors.items():
            if key.startswith("optp"):
                assert err == 0.0, key          # exact by construction
            else:
                assert err < 0.11, (key, err)   # Full-Track within 11%

    def test_custom_model_report(self):
        worse = SizeModel(matrix_entry=4)
        errors = verify_default_calibration(worse)
        assert errors["full_track_n40"] > 0.4  # halved cells: far off
