"""Unit tests for the size model, statistics, and the metrics collector."""

import math

import numpy as np
import pytest

from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import PiggybackEntry
from repro.core.messages import (
    CRPSM,
    FetchMessage,
    FullTrackRM,
    FullTrackSM,
    OptPSM,
    OptTrackRM,
    OptTrackSM,
)
from repro.memory.store import WriteId
from repro.metrics.collector import MessageKind, MetricsCollector
from repro.metrics.sizing import DEFAULT_SIZE_MODEL, SizeModel
from repro.metrics.stats import RunningStat, percentile, summarize


class TestSizeModel:
    def test_matrix_clock_quadratic(self):
        m = SizeModel()
        assert m.matrix_clock(5) == 25 * m.matrix_entry
        assert m.matrix_clock(40) == 1600 * m.matrix_entry

    def test_vector_clock_linear(self):
        m = SizeModel()
        assert m.vector_clock(40) == 40 * m.vector_entry

    def test_calibration_full_track_sm_n5(self):
        # calibrated against the paper's Table II: ~518 bytes at n=5
        assert abs(DEFAULT_SIZE_MODEL.sm_full_track(5) - 518) <= 10

    def test_calibration_optp_sm(self):
        # Table III: optP SM = 259 at n=5, 609 at n=40 (209 + 10 n)
        m = DEFAULT_SIZE_MODEL
        assert m.sm_optp(5) == 259
        assert m.sm_optp(40) == 609

    def test_opt_track_log_cost(self):
        m = SizeModel()
        assert m.opt_track_log([2, 0, 1]) == 3 * m.log_entry_overhead + 3 * m.dest_id

    def test_shape_matches_per_entry(self):
        m = SizeModel()
        assert m.opt_track_log_shape(3, 3) == m.opt_track_log([2, 0, 1])

    def test_tuple_log(self):
        m = SizeModel()
        assert m.tuple_log(4) == 4 * m.tuple_entry

    def test_negative_rejected(self):
        m = SizeModel()
        with pytest.raises(ValueError):
            m.opt_track_log([-1])
        with pytest.raises(ValueError):
            m.tuple_log(-2)
        with pytest.raises(ValueError):
            m.opt_track_log_shape(-1, 0)
        with pytest.raises(ValueError):
            SizeModel(clock=-1)

    def test_compact_model_is_headerless(self):
        m = SizeModel.compact()
        assert m.fm() == 0
        assert m.sm_optp(5) == m.var_id + m.value + 5 * m.vector_entry

    def test_fm_base_is_the_papers_constant(self):
        # "the size of FM is a constant byte count c" — the base; the
        # soundness fix adds 12 B per piggybacked requirement pair
        m = DEFAULT_SIZE_MODEL
        assert m.fm() == m.fm_size
        assert m.fm_requirement == 12


class TestMessageSizes:
    def test_full_track_messages(self):
        m = DEFAULT_SIZE_MODEL
        sm = FullTrackSM(0, 1, WriteId(0, 1), MatrixClock(10))
        rm = FullTrackRM(0, 1, WriteId(0, 1), MatrixClock(10), 0)
        assert sm.metadata_size(m) == m.sm_full_track(10)
        assert rm.metadata_size(m) == m.rm_full_track(10)
        assert sm.metadata_size(m) - rm.metadata_size(m) == m.var_id

    def test_opt_track_sm_grows_with_log(self):
        m = DEFAULT_SIZE_MODEL
        small = OptTrackSM(0, 1, WriteId(0, 1), ())
        big = OptTrackSM(
            0, 1, WriteId(0, 1),
            tuple(PiggybackEntry(0, c, frozenset({1, 2})) for c in range(1, 6)),
        )
        assert big.metadata_size(m) - small.metadata_size(m) == (
            5 * m.log_entry_overhead + 10 * m.dest_id
        )

    def test_crp_sm_grows_per_tuple(self):
        m = DEFAULT_SIZE_MODEL
        a = CRPSM(0, 1, WriteId(0, 1), ())
        b = CRPSM(0, 1, WriteId(0, 1), ((0, 1), (1, 2)))
        assert b.metadata_size(m) - a.metadata_size(m) == 2 * m.tuple_entry

    def test_optp_quadratic_total_linear_per_message(self):
        m = DEFAULT_SIZE_MODEL
        s5 = OptPSM(0, 1, WriteId(0, 1), VectorClock(5)).metadata_size(m)
        s10 = OptPSM(0, 1, WriteId(0, 1), VectorClock(10)).metadata_size(m)
        assert s10 - s5 == 5 * m.vector_entry

    def test_fetch_size(self):
        m = DEFAULT_SIZE_MODEL
        assert FetchMessage(0, 1, 0).metadata_size(m) == m.fm()
        with_reqs = FetchMessage(0, 1, 0, requirements=((2, 5), (3, 1)))
        assert with_reqs.metadata_size(m) == m.fm() + 2 * m.fm_requirement

    def test_rm_log_includes_write_own_entry_cost(self):
        m = DEFAULT_SIZE_MODEL
        bare = OptTrackRM(0, 1, None, (), 0)
        with_entry = OptTrackRM(
            0, 1, WriteId(2, 3),
            (PiggybackEntry(2, 3, frozenset({4, 5})),), 0,
        )
        assert with_entry.metadata_size(m) - bare.metadata_size(m) == (
            m.log_entry_overhead + 2 * m.dest_id
        )


class TestRunningStat:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(10, 3, size=500)
        rs = RunningStat()
        rs.extend(xs)
        assert rs.count == 500
        assert rs.mean == pytest.approx(np.mean(xs))
        assert rs.stdev == pytest.approx(np.std(xs, ddof=1))
        assert rs.minimum == xs.min() and rs.maximum == xs.max()
        assert rs.total == pytest.approx(xs.sum())

    def test_empty(self):
        rs = RunningStat()
        assert rs.count == 0 and rs.variance == 0.0

    def test_single_sample(self):
        rs = RunningStat()
        rs.add(5.0)
        assert rs.mean == 5.0 and rs.variance == 0.0

    def test_merge_equals_concatenation(self):
        rng = np.random.default_rng(1)
        xs, ys = rng.normal(size=100), rng.normal(5, 2, size=50)
        a, b, ref = RunningStat(), RunningStat(), RunningStat()
        a.extend(xs)
        b.extend(ys)
        ref.extend(np.concatenate([xs, ys]))
        a.merge(b)
        assert a.count == ref.count
        assert a.mean == pytest.approx(ref.mean)
        assert a.variance == pytest.approx(ref.variance)

    def test_merge_with_empty(self):
        a = RunningStat()
        a.add(1.0)
        a.merge(RunningStat())
        assert a.count == 1
        b = RunningStat()
        b.merge(a)
        assert b.mean == 1.0


class TestPercentileAndSummary:
    def test_percentile_matches_numpy(self):
        xs = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.6])
        for q in (0, 25, 50, 75, 95, 100):
            assert percentile(xs, q) == pytest.approx(np.percentile(xs, q))

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4 and s.mean == 2.5 and s.total == 10.0
        assert s.p50 == 2.5

    def test_summarize_empty(self):
        s = summarize([])
        assert s.count == 0


class TestCollector:
    def test_warmup_gate(self):
        c = MetricsCollector()
        c.record_message(MessageKind.SM, 100)  # before window opens
        c.start_measuring()
        c.record_message(MessageKind.SM, 200)
        tally = c.tally(MessageKind.SM)
        assert tally.lifetime_count == 2
        assert tally.lifetime_bytes == 300
        assert tally.count == 1
        assert tally.total_bytes == 200
        assert tally.mean_bytes == 200

    def test_totals_across_kinds(self):
        c = MetricsCollector()
        c.start_measuring()
        c.record_message(MessageKind.SM, 10)
        c.record_message(MessageKind.FM, 20)
        c.record_message(MessageKind.RM, 30)
        assert c.total_message_count == 3
        assert c.total_metadata_bytes == 60

    def test_operation_counters(self):
        c = MetricsCollector()
        c.record_operation(True)
        c.record_operation(False, remote=True)
        c.start_measuring()
        c.record_operation(False)
        assert c.ops_write == 1 and c.ops_read == 2 and c.ops_read_remote == 1
        assert c.measured_ops_read == 1 and c.measured_ops_write == 0

    def test_samples_only_in_window(self):
        c = MetricsCollector()
        c.record_log_size(10)
        c.record_activation_delay(5.0)
        assert c.log_sizes.count == 0 and c.activation_delays.count == 0
        c.start_measuring()
        c.record_log_size(10)
        assert c.log_sizes.count == 1

    def test_negative_size_rejected(self):
        c = MetricsCollector()
        with pytest.raises(ValueError):
            c.record_message(MessageKind.SM, -1)

    def test_as_dict_keys(self):
        c = MetricsCollector()
        c.start_measuring()
        c.record_message(MessageKind.SM, 10)
        d = c.as_dict()
        assert d["SM_count"] == 1
        assert d["SM_mean_bytes"] == 10
        assert "total_metadata_bytes" in d
        assert "mean_fetch_rtt_ms" in d
