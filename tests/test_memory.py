"""Unit tests for replica placement and the per-site variable store."""

import numpy as np
import pytest

from repro.memory.replication import (
    HashPlacement,
    RandomPlacement,
    RoundRobinPlacement,
    full_replication,
    paper_replication_factor,
)
from repro.memory.store import BOTTOM, SiteStore, WriteId


class TestPaperReplicationFactor:
    @pytest.mark.parametrize(
        "n,expected", [(5, 2), (10, 3), (20, 6), (30, 9), (40, 12)]
    )
    def test_paper_values(self, n, expected):
        # the factor implied by the paper's Table IV message counts
        assert paper_replication_factor(n) == expected

    def test_at_least_one(self):
        assert paper_replication_factor(1) == 1
        assert paper_replication_factor(2) == 1

    def test_never_exceeds_n(self):
        assert paper_replication_factor(3, fraction=1.0) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            paper_replication_factor(0)
        with pytest.raises(ValueError):
            paper_replication_factor(10, fraction=0.0)
        with pytest.raises(ValueError):
            paper_replication_factor(10, fraction=1.5)


class TestRoundRobinPlacement:
    def test_replica_count(self):
        pl = RoundRobinPlacement(10, 30, 3)
        for v in range(30):
            assert len(pl.replicas(v)) == 3

    def test_replicas_are_consecutive_ring_slots(self):
        pl = RoundRobinPlacement(5, 10, 2)
        assert set(pl.replicas(0)) == {0, 1}
        assert set(pl.replicas(4)) == {4, 0}  # wraps

    def test_even_load(self):
        pl = RoundRobinPlacement(10, 100, 3)
        counts = pl.load_balance()
        assert counts.sum() == 300
        assert counts.max() - counts.min() == 0  # q multiple of n: perfectly even

    def test_nearly_even_load_when_q_not_multiple(self):
        pl = RoundRobinPlacement(7, 100, 3)
        counts = pl.load_balance()
        assert counts.max() - counts.min() <= 3

    def test_vars_at_inverts_replicas(self):
        pl = RoundRobinPlacement(6, 20, 2)
        for s in range(6):
            for v in pl.vars_at(s):
                assert s in pl.replicas(v)
        for v in range(20):
            for s in pl.replicas(v):
                assert v in pl.vars_at(s)

    def test_is_replicated_at(self):
        pl = RoundRobinPlacement(5, 10, 2)
        assert pl.is_replicated_at(0, 0)
        assert pl.is_replicated_at(0, 1)
        assert not pl.is_replicated_at(0, 3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RoundRobinPlacement(0, 10, 1)
        with pytest.raises(ValueError):
            RoundRobinPlacement(5, 0, 1)
        with pytest.raises(ValueError):
            RoundRobinPlacement(5, 10, 0)
        with pytest.raises(ValueError):
            RoundRobinPlacement(5, 10, 6)


class TestFetchRouting:
    def test_reader_holding_replica_fetches_itself(self):
        pl = RoundRobinPlacement(5, 10, 2)
        assert pl.fetch_site(0, 0) == 0

    def test_fetch_site_is_a_replica(self):
        pl = RoundRobinPlacement(8, 40, 3)
        for v in range(40):
            for reader in range(8):
                assert pl.fetch_site(v, reader) in pl.replicas(v)

    def test_fetch_site_deterministic(self):
        pl = RoundRobinPlacement(8, 40, 3)
        assert pl.fetch_site(5, 2) == pl.fetch_site(5, 2)

    def test_ring_distance_choice(self):
        pl = RoundRobinPlacement(6, 6, 2)
        # var 2 lives at {2, 3}; reader 4 is 4 hops from 2 (clockwise 4->2
        # = (2-4) % 6 = 4) and 5 hops from 3; chooses 2
        assert pl.fetch_site(2, 4) == 2


class TestOtherPlacements:
    def test_random_placement_valid_and_seed_stable(self):
        a = RandomPlacement(10, 50, 3, seed=1)
        b = RandomPlacement(10, 50, 3, seed=1)
        c = RandomPlacement(10, 50, 3, seed=2)
        for v in range(50):
            assert len(set(a.replicas(v))) == 3
            assert a.replicas(v) == b.replicas(v)
        assert any(a.replicas(v) != c.replicas(v) for v in range(50))

    def test_hash_placement_parameter_pure(self):
        a = HashPlacement(10, 50, 3)
        b = HashPlacement(10, 50, 3)
        for v in range(50):
            assert a.replicas(v) == b.replicas(v)
            assert len(set(a.replicas(v))) == 3

    def test_full_replication_helper(self):
        pl = full_replication(4, 10)
        assert pl.is_full
        for v in range(10):
            assert set(pl.replicas(v)) == {0, 1, 2, 3}

    def test_partial_is_not_full(self):
        assert not RoundRobinPlacement(5, 10, 2).is_full


class TestSiteStore:
    def test_initial_value_is_bottom(self):
        store = SiteStore(0, [1, 2, 3])
        slot = store.read(2)
        assert slot.value is BOTTOM
        assert slot.write_id is None

    def test_apply_then_read(self):
        store = SiteStore(0, [1])
        wid = WriteId(3, 7)
        store.apply(1, "v", wid, 12.5)
        slot = store.read(1)
        assert slot.value == "v"
        assert slot.write_id == wid
        assert slot.applied_at == 12.5

    def test_non_replicated_read_raises(self):
        store = SiteStore(4, [1])
        with pytest.raises(KeyError, match="site 4"):
            store.read(2)

    def test_non_replicated_apply_raises(self):
        store = SiteStore(0, [1])
        with pytest.raises(KeyError):
            store.apply(9, "v", WriteId(0, 1), 0.0)

    def test_contains_and_len(self):
        store = SiteStore(0, [3, 5])
        assert 3 in store and 5 in store and 4 not in store
        assert len(store) == 2
        assert store.variables == (3, 5)


class TestWriteId:
    def test_ordering_per_writer(self):
        assert WriteId(0, 1) < WriteId(0, 2) < WriteId(1, 1)

    def test_hashable_and_tuple(self):
        assert WriteId(2, 5).as_tuple() == (2, 5)
        assert len({WriteId(1, 1), WriteId(1, 1), WriteId(1, 2)}) == 2
