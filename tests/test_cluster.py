"""Tests for the interactive CausalCluster facade."""

import pytest

from repro import CausalCluster, ConstantLatency
from repro.memory.store import BOTTOM


def make(protocol="opt-track", n=4, **kw):
    kw.setdefault("latency", ConstantLatency(10.0))
    kw.setdefault("n_vars", 8)
    return CausalCluster(n, protocol=protocol, **kw)


class TestBasics:
    def test_write_then_settle_then_read_everywhere(self):
        c = make(protocol="optp")
        c.write(0, var=3, value=42)
        c.settle()
        for site in range(4):
            assert c.read(site, 3) == 42

    def test_initial_reads_are_bottom(self):
        c = make(protocol="opt-track-crp")
        for site in range(4):
            assert c.read(site, 0) is BOTTOM

    def test_read_your_own_write_immediately(self):
        for protocol in ("optp", "opt-track-crp", "full-track", "opt-track"):
            c = make(protocol=protocol, n=3)
            # pick a variable the writer replicates so the read is local
            var = c.placement.vars_at(0)[0]
            c.write(0, var, "mine")
            assert c.read(0, var) == "mine"

    def test_remote_read_drives_simulator(self):
        c = make(protocol="opt-track", n=5, replication_factor=2)
        # find a variable site 4 does NOT replicate
        var = next(v for v in range(8) if not c.placement.is_replicated_at(v, 4))
        writer = c.placement.replicas(var)[0]
        c.write(writer, var, "remote-value")
        c.settle()
        t0 = c.now
        assert c.read(4, var) == "remote-value"
        assert c.now > t0  # the fetch round trip took simulated time

    def test_read_with_id(self):
        c = make(protocol="optp")
        wid = c.write(2, 1, "x")
        c.settle()
        value, rid = c.read_with_id(0, 1)
        assert value == "x" and rid == wid

    def test_advance_partial_delivery(self):
        c = make(protocol="optp", latency=ConstantLatency(50.0))
        c.write(0, 0, 1)
        assert c.pending_messages() == 0  # not yet delivered, so not pending
        c.advance(10.0)
        assert c.read(1, 0) is BOTTOM  # not yet delivered
        c.advance(100.0)
        assert c.read(1, 0) == 1

    def test_check_passes_for_real_run(self):
        c = make(protocol="full-track", n=4)
        for k in range(10):
            c.write(k % 4, k % 8, k)
            c.advance(5.0)
        c.settle()
        for site in range(4):
            for var in c.placement.vars_at(site)[:2]:
                c.read(site, var)
        report = c.check()
        assert report.ok

    def test_site_range_validated(self):
        c = make()
        with pytest.raises(ValueError):
            c.write(9, 0, 1)
        with pytest.raises(ValueError):
            c.read(-1, 0)

    def test_check_requires_history(self):
        c = make(record_history=False)
        with pytest.raises(RuntimeError):
            c.check()

    def test_repr_mentions_protocol(self):
        assert "OptTrackProtocol" in repr(make(protocol="opt-track"))


class TestCausalLitmus:
    """Classic causal-consistency litmus scenarios, all four protocols."""

    @pytest.mark.parametrize("protocol", ["full-track", "opt-track", "opt-track-crp", "optp"])
    def test_causal_write_read_write_chain(self, protocol):
        kw = {"replication_factor": 2} if protocol in ("full-track", "opt-track") else {}
        c = make(protocol=protocol, n=4, **kw)
        # site 0 writes x; site 1 reads x then writes y; any site reading
        # the new y and then x must not see bottom
        x = c.placement.vars_at(0)[0]
        c.write(0, x, "first")
        c.settle()
        assert c.read(1, x) == "first"
        y = next(v for v in c.placement.vars_at(1) if v != x)
        c.write(1, y, "second")
        c.settle()
        for site in range(4):
            assert c.read(site, y) == "second"
            assert c.read(site, x) == "first"
        c.check().raise_if_violated()

    @pytest.mark.parametrize("protocol", ["full-track", "opt-track", "opt-track-crp", "optp"])
    def test_writes_by_one_site_seen_in_order(self, protocol):
        kw = {"replication_factor": 2} if protocol in ("full-track", "opt-track") else {}
        c = make(protocol=protocol, n=3, **kw)
        var = c.placement.vars_at(0)[0]
        for k in range(5):
            c.write(0, var, k)
            c.advance(3.0)
        c.settle()
        reader = c.placement.replicas(var)[-1]
        assert c.read(reader, var) == 4
        c.check().raise_if_violated()

    def test_overwritten_value_invisible_after_seen(self):
        c = make(protocol="optp", n=3)
        c.write(0, 2, "old")
        c.settle()
        c.write(0, 2, "new")
        c.settle()
        assert c.read(1, 2) == "new"
        assert c.read(1, 2) == "new"  # monotone
        c.check().raise_if_violated()
