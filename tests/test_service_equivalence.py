"""Sim/live equivalence: same workload, both substrates, same outcome.

The tentpole claim of the port layer is that the simulator and the
service stack are *interchangeable substrates* under the identical
protocol cores.  These tests drive the same seeded workload through

* the discrete-event simulator (:class:`repro.CausalCluster`), and
* in-process loopback service nodes
  (:class:`repro.service.loopback.LoopbackCluster` — real codec, real
  reliable channels, deterministic StepClock)

and require that (a) both merged histories pass the causal checker and
(b) both clusters converge to identical final stores.

Workloads are single-writer-per-variable (site ``i`` writes variables
``v`` with ``v % n == i``): causal consistency alone does not fix the
winner between two *concurrent* writes to one variable, so final-store
equality across substrates is only a theorem when each variable has a
unique writer.  Reads are unconstrained.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CausalCluster, ConstantLatency
from repro.service.bootstrap import build_placement, default_topology
from repro.service.history import merge_event_lists
from repro.service.loopback import LoopbackCluster
from repro.verify.causal_checker import check_causal_consistency

PROTOCOLS = ("full-track", "opt-track", "opt-track-crp", "optp")

N_SITES = 3
N_VARS = 6


def ops_strategy():
    """A short global op sequence; writes respect single-writer-per-var."""
    def fix(op):
        kind, site, var, payload = op
        if kind == "w":
            var = site + N_SITES * (var % (N_VARS // N_SITES))
        return (kind, site, var % N_VARS, payload)

    return st.lists(
        st.tuples(
            st.sampled_from(["w", "r"]),
            st.integers(0, N_SITES - 1),
            st.integers(0, N_VARS - 1),
            st.integers(0, 99),
        ).map(fix),
        min_size=1,
        max_size=25,
    )


def run_sim(protocol, ops):
    cluster = CausalCluster(
        N_SITES, protocol=protocol, n_vars=N_VARS,
        latency=ConstantLatency(5.0),
    )
    for k, (kind, site, var, payload) in enumerate(ops):
        if kind == "w":
            cluster.write(site, var=var, value=f"s{site}p{payload}")
        else:
            cluster.read_with_id(site, var)
    cluster.settle()
    report = cluster.check()
    return report, [p.ctx.store for p in cluster.protocols]


def run_loopback(protocol, ops):
    topology = default_topology(N_SITES, protocol=protocol, n_vars=N_VARS)
    cluster = LoopbackCluster(topology)
    for kind, site, var, payload in ops:
        # space ops out so live timestamps advance like the sim's do
        cluster.clock.tick(1.0)
        if kind == "w":
            cluster.put(site, var, f"s{site}p{payload}")
        else:
            cluster.get(site, var)
    cluster.settle()
    merged = merge_event_lists(cluster.histories())
    report = check_causal_consistency(merged, build_placement(topology))
    return report, [node.ctx.store for node in cluster.nodes]


def store_contents(store):
    return {
        var: (store.read(var).value, store.read(var).write_id)
        for var in store.variables
    }


def assert_equivalent(protocol, ops):
    sim_report, sim_stores = run_sim(protocol, ops)
    live_report, live_stores = run_loopback(protocol, ops)
    assert not sim_report.violations, sim_report.violations[:3]
    assert not live_report.violations, live_report.violations[:3]
    assert len(sim_stores) == len(live_stores)
    for site, (sim_store, live_store) in enumerate(
        zip(sim_stores, live_stores)
    ):
        assert store_contents(sim_store) == store_contents(live_store), (
            f"{protocol}: site {site} diverged between substrates"
        )


class TestFixedWorkloads:
    def test_write_everywhere_then_read_everywhere(self):
        ops = [("w", s, s, s) for s in range(N_SITES)]
        ops += [
            ("r", s, v, 0) for s in range(N_SITES) for v in range(N_SITES)
        ]
        for protocol in PROTOCOLS:
            assert_equivalent(protocol, ops)

    def test_causal_chain_across_sites(self):
        # s0 writes x0, s1 reads x0 then writes x1, s2 reads both
        ops = [
            ("w", 0, 0, 1), ("r", 1, 0, 0), ("w", 1, 1, 2),
            ("r", 2, 1, 0), ("r", 2, 0, 0),
        ]
        for protocol in PROTOCOLS:
            assert_equivalent(protocol, ops)

    def test_overwrites_by_same_writer(self):
        ops = [("w", 0, 0, k) for k in range(5)] + [("r", 2, 0, 0)]
        for protocol in PROTOCOLS:
            assert_equivalent(protocol, ops)


class TestPropertyEquivalence:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=ops_strategy(), protocol=st.sampled_from(PROTOCOLS))
    def test_random_workloads_agree(self, ops, protocol):
        assert_equivalent(protocol, ops)
