"""Edge-case tests for the runner, engine, and simulator wiring."""

import math

import pytest

from repro import ConstantLatency, SimulationConfig, run_simulation
from repro.experiments.runner import PAPER_WARMUP_FRACTION, build_placement
from repro.sim.engine import SimulationError, Simulator
from repro.workload.generator import generate_workload


class TestWarmupSemantics:
    def test_paper_fraction_constant(self):
        assert PAPER_WARMUP_FRACTION == 0.15

    def test_exact_operation_split(self):
        # ceil(0.15 * total) operations are excluded from the window
        cfg = SimulationConfig(protocol="optp", n_sites=4, ops_per_process=50,
                               write_rate=0.5, seed=0)
        result = run_simulation(cfg)
        total = result.workload.total_operations
        measured = (result.collector.measured_ops_write
                    + result.collector.measured_ops_read)
        assert measured == total - math.ceil(0.15 * total)

    def test_zero_warmup_measures_everything(self):
        cfg = SimulationConfig(protocol="optp", n_sites=3, ops_per_process=20,
                               warmup_fraction=0.0, seed=0)
        result = run_simulation(cfg)
        col = result.collector
        assert col.measured_ops_write + col.measured_ops_read == 60
        assert col.total_message_count == col.lifetime_message_count

    def test_high_warmup_fraction(self):
        cfg = SimulationConfig(protocol="optp", n_sites=3, ops_per_process=20,
                               warmup_fraction=0.9, seed=0)
        result = run_simulation(cfg)
        col = result.collector
        assert 0 < col.total_message_count < col.lifetime_message_count


class TestRunResult:
    def test_final_log_sizes_shape(self):
        cfg = SimulationConfig(protocol="opt-track", n_sites=5,
                               ops_per_process=20, seed=0)
        result = run_simulation(cfg)
        assert len(result.final_log_sizes) == 5
        assert all(isinstance(x, int) for x in result.final_log_sizes)

    def test_summary_contains_identity_fields(self):
        cfg = SimulationConfig(protocol="full-track", n_sites=4,
                               ops_per_process=15, write_rate=0.3, seed=9)
        summary = run_simulation(cfg).summary()
        assert summary["protocol"] == "full-track"
        assert summary["n"] == 4
        assert summary["p"] == 1  # round(0.3*4)
        assert summary["write_rate"] == 0.3
        assert summary["seed"] == 9
        assert summary["sim_time_ms"] > 0

    def test_sim_event_count_positive(self):
        cfg = SimulationConfig(protocol="optp", n_sites=3, ops_per_process=10,
                               seed=0)
        assert run_simulation(cfg).total_sim_events > 30


class TestPlacementBuild:
    def test_round_robin_default(self):
        cfg = SimulationConfig(protocol="opt-track", n_sites=10)
        pl = build_placement(cfg)
        assert pl.replication_factor == 3

    def test_random_uses_seed(self):
        a = build_placement(SimulationConfig(protocol="opt-track", n_sites=8,
                                             placement="random", seed=1))
        b = build_placement(SimulationConfig(protocol="opt-track", n_sites=8,
                                             placement="random", seed=1))
        for v in range(100):
            assert a.replicas(v) == b.replicas(v)

    def test_hash_placement_buildable(self):
        cfg = SimulationConfig(protocol="opt-track", n_sites=8, placement="hash")
        pl = build_placement(cfg)
        assert pl.replication_factor == 2


class TestEngineEdges:
    def test_run_not_reentrant(self):
        sim = Simulator()
        failure = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                failure.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert failure and "reentrant" in str(failure[0])

    def test_cancelled_head_does_not_stall_run_until(self):
        sim = Simulator()
        ev = sim.schedule(5.0, lambda: None)
        sim.schedule(10.0, lambda: None)
        ev.cancel()
        sim.run(until=7.0)
        assert sim.now == 7.0
        sim.run()
        assert sim.now == 10.0

    def test_step_skips_cancelled(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        ev.cancel()
        assert sim.step() is True
        assert fired == ["b"]


class TestWorkloadOverrides:
    def test_explicit_workload_smaller_var_space_ok(self):
        wl = generate_workload(3, n_vars=5, ops_per_process=10, seed=0)
        cfg = SimulationConfig(protocol="optp", n_sites=3, n_vars=10,
                               ops_per_process=10, seed=0)
        result = run_simulation(cfg, workload=wl)
        assert result.workload is wl

    def test_explicit_workload_larger_var_space_rejected(self):
        wl = generate_workload(3, n_vars=50, ops_per_process=10, seed=0)
        cfg = SimulationConfig(protocol="optp", n_sites=3, n_vars=10,
                               ops_per_process=10, seed=0)
        with pytest.raises(ValueError, match="more variables"):
            run_simulation(cfg, workload=wl)

    def test_gap_range_respected_in_sim_time(self):
        cfg = SimulationConfig(protocol="optp", n_sites=2, ops_per_process=10,
                               gap_range_ms=(100.0, 100.0), seed=0,
                               latency=ConstantLatency(1.0))
        result = run_simulation(cfg)
        # 10 ops at exactly 100 ms spacing: last op at t=1000
        assert result.sim_time_ms >= 1000.0
        assert result.sim_time_ms < 1100.0
