"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; breaking one silently is how
quickstarts rot.  Each is run in-process (they all guard on
``__name__ == "__main__"`` and expose ``main()``).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def load_module(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = load_module(path)
    assert hasattr(module, "main"), f"{path.name} must expose main()"
    if path.stem == "protocol_comparison":
        module.main(6, 0.5)  # smaller n: keep the suite fast
    else:
        module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "social_network", "protocol_comparison",
            "geo_replicated_store", "fault_tolerance",
            "chaos_recovery"} <= names
