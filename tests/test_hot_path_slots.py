"""Hot-path classes must stay slotted.

The hot-path rearchitecture (docs/architecture.md, "Hot path &
performance model") relies on ``__slots__`` for the record types the
simulator creates or touches per event: pending-message entries, heap
events, per-channel stats, clocks, logs, tracer spans, and streaming
stats.  A ``__dict__`` creeping back in (e.g. a subclass forgetting
``__slots__ = ()``, or a dataclass losing ``slots=True``) silently
doubles per-instance memory and slows every attribute access, so this
is pinned here.
"""

import pytest

from repro.core.base import _Pending, _PendingFM, _PendingRM, _PendingSM
from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import OptTrackLog, PiggybackEntry, TupleLog
from repro.metrics.stats import RunningStat
from repro.obs.tracer import TraceEvent, _MsgState
from repro.sim.engine import ScheduledEvent, Simulator
from repro.sim.network import ChannelStats

#: every class on the per-event/per-message hot path, with a factory
#: producing a live instance (slots only matter on instances: a class
#: in the MRO without __slots__ gives every instance a __dict__)
HOT_PATH_INSTANCES = {
    ScheduledEvent: lambda: Simulator().schedule(1.0, lambda: None),
    _PendingSM: lambda: _PendingSM(0, object(), 0.0, 0),
    _PendingRM: lambda: _PendingRM(0, object(), 0.0, 0),
    _PendingFM: lambda: _PendingFM(0, object(), 0.0, 0),
    ChannelStats: ChannelStats,
    PiggybackEntry: lambda: PiggybackEntry(0, 1, frozenset()),
    OptTrackLog: OptTrackLog,
    TupleLog: TupleLog,
    MatrixClock: lambda: MatrixClock(2),
    VectorClock: lambda: VectorClock(2),
    RunningStat: RunningStat,
    TraceEvent: lambda: TraceEvent(id=1, kind="x", site=0, ts=0.0),
    _MsgState: lambda: _MsgState(payload=object(), send_id=1, src=0, dst=1),
}


@pytest.mark.parametrize(
    "cls", HOT_PATH_INSTANCES, ids=lambda c: f"{c.__module__}.{c.__name__}"
)
def test_hot_path_instance_has_no_dict(cls):
    instance = HOT_PATH_INSTANCES[cls]()
    assert not hasattr(instance, "__dict__"), (
        f"{cls.__name__} instances grew a __dict__ — some class in its "
        f"MRO lost __slots__"
    )


def test_pending_subclasses_declare_empty_slots():
    # the base carries the fields; subclasses must add none implicitly
    for sub in (_PendingSM, _PendingRM, _PendingFM):
        assert sub.__slots__ == ()
        assert issubclass(sub, _Pending)


def test_pending_kinds_are_distinct():
    # the drain machinery indexes dirty lists by this class attribute
    kinds = {_PendingSM.kind, _PendingRM.kind, _PendingFM.kind}
    assert kinds == {0, 1, 2}
