"""Indexed wakeups must be observationally identical to the legacy scan.

The dependency-indexed drain (``core.base``) replaces the legacy "re-test
every buffered message after every apply" fixpoint with threshold heaps
keyed by writer.  The refactor's contract is *bit-identical behavior*:
the same messages activate in the same order at the same simulated
times, under every protocol, with and without chaos-induced reordering.
This property test pins that contract by running full simulations in
both modes and diffing the complete event traces.
"""

import pytest

from repro.check.sanitizer import diff_traces
from repro.core.base import get_drain_mode, set_debug_wakeups, set_drain_mode
from repro.experiments.runner import SimulationConfig, run_simulation
from repro.obs.tracer import Tracer
from repro.sim.faults import FaultPlan

PROTOCOLS = ["full-track", "opt-track", "opt-track-crp", "optp"]
SEEDS = [0, 1]


@pytest.fixture(autouse=True)
def _restore_drain_mode():
    before = get_drain_mode()
    yield
    set_drain_mode(before)
    set_debug_wakeups(False)


def _config(protocol: str, seed: int, chaos: bool) -> SimulationConfig:
    plan = None
    if chaos:
        # drops + dups + latency spikes maximize cross-channel
        # reordering, which is what stresses the wakeup index
        plan = FaultPlan.uniform(drop_rate=0.05, dup_rate=0.02, spike_rate=0.02)
    return SimulationConfig(
        protocol=protocol,
        n_sites=5,
        n_vars=20,
        ops_per_process=40,
        seed=seed,
        fault_plan=plan,
        fault_seed=seed,
    )


def _traced_run(config: SimulationConfig, mode: str):
    set_drain_mode(mode)
    tracer = Tracer()
    run_simulation(config, tracer=tracer)
    return tracer.to_trace()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_indexed_matches_legacy_plain(protocol, seed):
    config = _config(protocol, seed, chaos=False)
    legacy = _traced_run(config, "legacy")
    indexed = _traced_run(config, "indexed")
    report = diff_traces(legacy, indexed, protocol=protocol)
    assert report.identical, report.format()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_indexed_matches_legacy_chaos(protocol, seed):
    config = _config(protocol, seed, chaos=True)
    legacy = _traced_run(config, "legacy")
    indexed = _traced_run(config, "indexed")
    report = diff_traces(legacy, indexed, protocol=protocol)
    assert report.identical, report.format()


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_debug_mode_asserts_no_missed_wakeups(protocol):
    # the indexed drain's internal cross-check: after every drain, a
    # full legacy-style re-scan must find nothing left applicable
    set_debug_wakeups(True)
    set_drain_mode("indexed")
    run_simulation(_config(protocol, seed=2, chaos=True))


def test_drain_mode_validation():
    with pytest.raises(ValueError):
        set_drain_mode("nonsense")
