"""Unit tests for the application-subsystem Site driver."""

import pytest

from repro import ConstantLatency, SimulationConfig, run_simulation
from repro.core.base import ProtocolContext, create_protocol
from repro.memory.replication import RoundRobinPlacement, full_replication
from repro.memory.store import SiteStore
from repro.metrics.collector import MetricsCollector
from repro.metrics.sizing import DEFAULT_SIZE_MODEL
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.process import Site
from repro.workload.schedule import Operation, OpKind, SiteSchedule


def build_site(schedule_items, n=2, protocol="optp", on_operation=None):
    sim = Simulator()
    net = Network(sim, n, ConstantLatency(5.0))
    placement = full_replication(n, 4)
    protocols = []
    for i in range(n):
        ctx = ProtocolContext(
            site=i, n_sites=n, placement=placement,
            store=SiteStore(i, placement.vars_at(i)),
            network=net, clock=sim, collector=MetricsCollector(),
            size_model=DEFAULT_SIZE_MODEL,
        )
        proto = create_protocol(protocol, ctx)
        net.register(i, proto.on_message)
        protocols.append(proto)
    sched = SiteSchedule(0, tuple(schedule_items))
    site = Site(protocols[0], sched, sim, on_operation=on_operation)
    return sim, site, protocols


class TestSiteExecution:
    def test_runs_all_operations(self):
        items = [
            (10.0, Operation(OpKind.WRITE, 0, 1)),
            (20.0, Operation(OpKind.READ, 0)),
            (30.0, Operation(OpKind.WRITE, 1, 2)),
        ]
        sim, site, _ = build_site(items)
        site.start()
        sim.run()
        assert site.finished
        assert site.completed_ops == 3

    def test_operations_fire_at_planned_times(self):
        seen = []
        items = [
            (10.0, Operation(OpKind.WRITE, 0, 1)),
            (25.0, Operation(OpKind.WRITE, 0, 2)),
        ]
        sim, site, _ = build_site(
            items, on_operation=lambda s: seen.append(sim.now)
        )
        site.start()
        sim.run()
        assert seen == [10.0, 25.0]

    def test_empty_schedule_is_finished_immediately(self):
        sim, site, _ = build_site([])
        assert site.finished
        site.start()
        sim.run()
        assert site.completed_ops == 0

    def test_double_start_rejected(self):
        sim, site, _ = build_site([(1.0, Operation(OpKind.READ, 0))])
        site.start()
        with pytest.raises(RuntimeError):
            site.start()

    def test_mismatched_protocol_site_rejected(self):
        sim, site, protocols = build_site([])
        bad_sched = SiteSchedule(1, ())
        with pytest.raises(ValueError):
            Site(protocols[0], bad_sched, sim)

    def test_on_operation_counts(self):
        count = [0]
        items = [(float(k + 1), Operation(OpKind.READ, 0)) for k in range(7)]
        sim, site, _ = build_site(items, on_operation=lambda s: count.__setitem__(0, count[0] + 1))
        site.start()
        sim.run()
        assert count[0] == 7


class TestBlockingRemoteReads:
    def test_remote_read_delays_subsequent_ops(self):
        # site 0 does not replicate var; a remote read takes a round trip
        # (2 x 5 ms) and the next op must wait for it
        sim = Simulator()
        net = Network(sim, 2, ConstantLatency(5.0))
        placement = RoundRobinPlacement(2, 2, 1)  # var v at site v only
        protocols = []
        from repro.metrics.collector import MetricsCollector as MC

        for i in range(2):
            ctx = ProtocolContext(
                site=i, n_sites=2, placement=placement,
                store=SiteStore(i, placement.vars_at(i)),
                network=net, clock=sim, collector=MC(),
                size_model=DEFAULT_SIZE_MODEL,
            )
            proto = create_protocol("opt-track", ctx)
            net.register(i, proto.on_message)
            protocols.append(proto)
        times = []
        sched = SiteSchedule(0, (
            (10.0, Operation(OpKind.READ, 1)),     # remote: var 1 at site 1
            (11.0, Operation(OpKind.READ, 0)),     # local, but must wait
        ))
        site = Site(protocols[0], sched, sim,
                    on_operation=lambda s: times.append(sim.now))
        site.start()
        sim.run()
        assert site.finished
        assert times[0] == 10.0
        assert times[1] == pytest.approx(20.0)  # 10 + RTT, not 11

    def test_runner_reports_fetch_rtt(self):
        cfg = SimulationConfig(protocol="opt-track", n_sites=4, n_vars=8,
                               replication_factor=1, write_rate=0.2,
                               ops_per_process=30, seed=0,
                               latency=ConstantLatency(10.0),
                               warmup_fraction=0.0)
        result = run_simulation(cfg)
        rtts = result.collector.fetch_rtts
        assert rtts.count > 0
        assert rtts.minimum >= 20.0  # at least one round trip
