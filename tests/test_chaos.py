"""Chaos suite: all four protocols stay correct when the network misbehaves.

The paper's correctness argument assumes reliable FIFO channels (TCP).
These tests drop, duplicate, delay, and partition the physical substrate
and assert the reliable ack/retransmit layer restores exactly the
channel guarantees the protocols need: every run still passes the
causal-consistency checker and the convergence checker, with zero
application-level losses or duplicate applies.

Also pinned here: the determinism contract (same ``fault_seed`` ⇒
bit-identical fault schedule and metrics) and the zero-overhead contract
(``fault_plan=None`` keeps the seed's reliable path untouched).
"""

import pytest

from repro import (
    CausalCluster,
    ChannelFaults,
    ConstantLatency,
    FaultPlan,
    Partition,
    RetransmitPolicy,
    SimulationConfig,
    UniformLatency,
    run_simulation,
)
from repro.sim.events import EventKind
from repro.verify.causal_checker import check_causal_consistency
from repro.verify.convergence import check_convergence

PROTOCOLS = ["full-track", "opt-track", "opt-track-crp", "optp"]

#: small retransmission timeout keeps chaos runs fast under simulated time
FAST_RETX = RetransmitPolicy(base_rto_ms=120.0, max_rto_ms=2000.0, jitter_ms=10.0)

PLANS = {
    "drop-0.3": FaultPlan.uniform(drop_rate=0.3),
    "dup-0.3": FaultPlan.uniform(dup_rate=0.3),
    "spikes": FaultPlan.uniform(spike_rate=0.2, spike_ms=(50.0, 400.0)),
    "drop+dup": FaultPlan.uniform(drop_rate=0.2, dup_rate=0.2),
    "partition-heal": FaultPlan.uniform(
        drop_rate=0.1,
        partitions=(Partition([0, 1], 400.0, 2500.0),),
    ),
}


def chaos_run(protocol, plan, *, seed=1, fault_seed=7, ops=30, n=5):
    cfg = SimulationConfig(
        protocol=protocol, n_sites=n, n_vars=10, ops_per_process=ops,
        seed=seed, record_history=True, latency=UniformLatency(5.0, 60.0),
        fault_plan=plan, fault_seed=fault_seed, retransmit=FAST_RETX,
    )
    return run_simulation(cfg)


def assert_exactly_once(result):
    """No application-level loss and no duplicate applies.

    Every write must be applied exactly once at every replica of its
    variable (the writer records its own local apply too).
    """
    applies = {}
    for ev in result.history.of_kind(EventKind.APPLY):
        key = (ev.site, ev.write_id)
        applies[key] = applies.get(key, 0) + 1
    dup = {k: c for k, c in applies.items() if c > 1}
    assert not dup, f"duplicate applies leaked above the transport: {dup}"
    for w in result.history.writes():
        replicas = set(result.placement.replicas(w.var))
        applied_at = {site for (site, wid) in applies if wid == w.write_id}
        assert applied_at == replicas, (
            f"write {w.write_id} applied at {sorted(applied_at)}, "
            f"expected replicas {sorted(replicas)}"
        )


class TestChaosSuite:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    def test_protocols_survive_every_fault_plan(self, protocol, plan_name):
        result = chaos_run(protocol, PLANS[plan_name])
        check_causal_consistency(result.history, result.placement).raise_if_violated()
        conv = check_convergence(result.protocols, result.history)
        assert conv.ok, conv.illegitimate
        assert_exactly_once(result)

    def test_chaos_actually_happened(self):
        result = chaos_run("opt-track", PLANS["drop+dup"])
        col = result.collector
        assert col.injected_drops > 0
        assert col.injected_dups > 0
        assert col.retransmissions > 0
        assert col.duplicate_drops > 0
        assert col.acks_sent > 0 and col.ack_bytes > 0

    def test_partition_recovery_latency_recorded(self):
        result = chaos_run("optp", PLANS["partition-heal"])
        col = result.collector
        assert col.injected_partition_drops > 0
        assert col.recovery_latency.count >= 1
        assert col.recovery_latency.mean > 0
        # the cut-off sites are the recovering ones
        assert set(col.recovery_by_site) <= set(range(5))

    def test_per_channel_fault_overrides(self):
        plan = FaultPlan.build(
            default=ChannelFaults(),
            channels={(0, 1): ChannelFaults(drop_rate=0.5)},
        )
        result = chaos_run("optp", plan)
        col = result.collector
        assert col.injected_drops > 0
        assert col.retransmissions > 0
        check_causal_consistency(result.history, result.placement).raise_if_violated()


class TestDeterminism:
    def test_same_fault_seed_bit_identical(self):
        a = chaos_run("opt-track", PLANS["drop+dup"], fault_seed=3)
        b = chaos_run("opt-track", PLANS["drop+dup"], fault_seed=3)
        assert a.summary() == b.summary()
        assert a.sim_time_ms == b.sim_time_ms
        assert a.total_sim_events == b.total_sim_events

    def test_different_fault_seed_differs(self):
        a = chaos_run("opt-track", PLANS["drop+dup"], fault_seed=3)
        b = chaos_run("opt-track", PLANS["drop+dup"], fault_seed=4)
        assert a.summary() != b.summary()

    def test_fault_stream_independent_of_latency_model(self):
        """Same fault seed ⇒ same injected-fault schedule even when the
        latency model (and hence the network RNG draws) changes."""
        plan = FaultPlan.uniform(drop_rate=0.25)
        a = chaos_run("optp", plan, ops=20)
        cfg = SimulationConfig(
            protocol="optp", n_sites=5, n_vars=10, ops_per_process=20,
            seed=1, latency=ConstantLatency(20.0),
            fault_plan=plan, fault_seed=7, retransmit=FAST_RETX,
        )
        b = run_simulation(cfg)
        # not bit-identical runs (latencies differ), but the fault
        # decisions for the same number of draws come from the same
        # stream: the drop *rate* realized must match closely
        ra = a.collector.injected_drops / a.protocols[0].ctx.network.faults.decisions
        rb = b.collector.injected_drops / b.protocols[0].ctx.network.faults.decisions
        assert abs(ra - rb) < 0.05


class TestZeroOverhead:
    def test_no_plan_means_no_transport(self):
        result = run_simulation(SimulationConfig(
            protocol="opt-track", n_sites=4, n_vars=8, ops_per_process=20, seed=0,
        ))
        net = result.protocols[0].ctx.network
        assert net.transport is None and net.faults is None
        col = result.collector
        assert col.retransmissions == 0 and col.acks_sent == 0
        assert col.injected_drops == 0 and col.duplicate_drops == 0

    def test_empty_plan_keeps_app_level_counts(self):
        """The reliable layer is transparent: same workload ⇒ identical
        SM/FM/RM counts whether or not the chaos stack is interposed."""
        base = run_simulation(SimulationConfig(
            protocol="opt-track", n_sites=5, n_vars=10, ops_per_process=25, seed=2,
        )).summary()
        wrapped = run_simulation(SimulationConfig(
            protocol="opt-track", n_sites=5, n_vars=10, ops_per_process=25, seed=2,
            fault_plan=FaultPlan(), retransmit=FAST_RETX,
        )).summary()
        for key in ("SM_count", "FM_count", "RM_count",
                    "ops_write", "ops_read", "ops_read_remote"):
            assert base[key] == wrapped[key], key


class TestClusterPartitionHelpers:
    def make(self, protocol="optp", **kw):
        kw.setdefault("latency", ConstantLatency(10.0))
        kw.setdefault("fault_plan", FaultPlan())
        kw.setdefault("retransmit", FAST_RETX)
        return CausalCluster(4, protocol=protocol, n_vars=8, **kw)

    def test_partition_requires_chaos_transport(self):
        c = CausalCluster(3, protocol="optp", n_vars=4)
        with pytest.raises(RuntimeError, match="fault_plan"):
            c.partition({0})

    def test_partition_heal_cycle_stays_causal(self):
        c = self.make()
        c.write(0, 0, "before")
        c.advance(100.0)
        c.partition({3})
        c.write(0, 1, "during")
        c.advance(300.0)
        # the severed site missed the update
        from repro.memory.store import BOTTOM
        assert c.protocols[3].ctx.store.read(1).value is BOTTOM
        c.heal()
        c.settle()
        assert c.read(3, 1) == "during"
        c.check().raise_if_violated()
        assert c.collector.recovery_latency.count >= 1
        assert 3 in c.collector.recovery_by_site

    def test_settle_refuses_while_partitioned(self):
        c = self.make()
        c.partition({1})
        c.write(0, 0, "x")
        c.advance(200.0)  # first attempt + retransmissions all severed
        with pytest.raises(RuntimeError, match="heal"):
            c.settle()
        c.heal()
        c.settle()
        c.check().raise_if_violated()

    def test_pause_and_chaos_compose(self):
        """A paused (stalled) process behind a lossy network: acks still
        flow (the transport is the NIC, not the process), deliveries are
        held, and resume + settle drains everything exactly once."""
        c = self.make(fault_plan=FaultPlan.uniform(drop_rate=0.2))
        c.pause_site(2)
        for k in range(6):
            c.write(k % 2, k % 8, k)
            c.advance(50.0)
        c.resume_site(2)
        c.settle()
        assert c.pending_messages() == 0
        c.check().raise_if_violated()

    def test_pending_messages_counts_held(self):
        c = CausalCluster(3, protocol="optp", n_vars=4,
                          latency=ConstantLatency(5.0))
        c.pause_site(1)
        c.write(0, 0, "x")
        c.advance(50.0)
        assert c.network.held_count(1) == 1
        assert c.pending_messages() == 1
        c.resume_site(1)
        c.advance(1.0)
        assert c.pending_messages() == 0
