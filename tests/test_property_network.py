"""Property-based tests for the network substrate and chaos scenarios."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CausalCluster
from repro.sim.engine import Simulator
from repro.sim.network import (
    AdversarialLatency,
    LogNormalLatency,
    Network,
    UniformLatency,
)

latency_models = st.sampled_from([
    UniformLatency(0.1, 500.0),
    LogNormalLatency(median_ms=20.0, sigma=1.5),
    AdversarialLatency(0.5, 2000.0),
])


class TestNetworkProperties:
    @given(
        latency=latency_models,
        seed=st.integers(0, 10_000),
        sends=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            min_size=1, max_size=60,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_per_channel_always(self, latency, seed, sends):
        sim = Simulator()
        net = Network(sim, 4, latency, rng=np.random.default_rng(seed))
        received: dict[int, list] = {i: [] for i in range(4)}
        for i in range(4):
            net.register(i, lambda src, msg, i=i: received[i].append((src, msg)))
        sequence: dict[tuple[int, int], int] = {}
        for src, dst in sends:
            key = (src, dst)
            sequence[key] = sequence.get(key, 0) + 1
            net.send(src, dst, sequence[key])
        sim.run()
        # per channel, payloads (their send sequence numbers) arrive sorted
        for dst, items in received.items():
            per_src: dict[int, list] = {}
            for src, msg in items:
                per_src.setdefault(src, []).append(msg)
            for msgs in per_src.values():
                assert msgs == sorted(msgs)

    @given(
        seed=st.integers(0, 10_000),
        n_msgs=st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_message_lost_or_duplicated(self, seed, n_msgs):
        sim = Simulator()
        net = Network(sim, 3, AdversarialLatency(), rng=np.random.default_rng(seed))
        got = []
        for i in range(3):
            net.register(i, lambda src, msg: got.append(msg))
        for k in range(n_msgs):
            net.send(k % 3, (k + 1) % 3, k)
        sim.run()
        assert sorted(got) == list(range(n_msgs))

    @given(
        seed=st.integers(0, 10_000),
        pause_after=st.integers(0, 10),
        n_msgs=st.integers(1, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_pause_resume_preserves_order_and_delivery(
        self, seed, pause_after, n_msgs
    ):
        sim = Simulator()
        net = Network(sim, 2, UniformLatency(1.0, 50.0),
                      rng=np.random.default_rng(seed))
        got = []
        net.register(1, lambda src, msg: got.append(msg))
        net.register(0, lambda src, msg: None)
        for k in range(min(pause_after, n_msgs)):
            net.send(0, 1, k)
        net.pause_site(1)
        for k in range(min(pause_after, n_msgs), n_msgs):
            net.send(0, 1, k)
        sim.run()
        net.resume_site(1)
        sim.run()  # the flush is scheduled through the event loop
        assert got == list(range(n_msgs))


class TestChaosClusters:
    """Random pauses + adversarial latency + every protocol."""

    @given(
        protocol=st.sampled_from(
            ["optp", "opt-track-crp", "full-track", "opt-track", "hb-track"]
        ),
        seed=st.integers(0, 5_000),
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_pause_storm_stays_causal(self, protocol, seed, data):
        n = 4
        kw = {}
        if protocol in ("full-track", "opt-track"):
            kw["replication_factor"] = data.draw(st.integers(1, n))
        c = CausalCluster(n, protocol=protocol, n_vars=6, seed=seed,
                          latency=AdversarialLatency(1.0, 400.0), **kw)
        paused: set[int] = set()
        for step in range(data.draw(st.integers(3, 15))):
            action = data.draw(st.integers(0, 3))
            site = data.draw(st.integers(0, n - 1))
            if action == 0 and site not in paused:
                c.pause_site(site)
                paused.add(site)
            elif action == 1 and site in paused:
                c.resume_site(site)
                paused.discard(site)
            elif action == 2:
                var = data.draw(st.integers(0, 5))
                c.write(site, var, step)
                c.advance(data.draw(st.floats(0.0, 100.0)))
            else:
                # reads only from unpaused sites and, under partial
                # replication, only of locally replicated variables
                # (remote reads could block forever on a paused server)
                if site in paused:
                    continue
                local = c.placement.vars_at(site)
                if local:
                    var = local[data.draw(st.integers(0, len(local) - 1))]
                    target = c.placement.fetch_site(var, site)
                    if target == site:
                        c.read(site, var)
        for site in list(paused):
            c.resume_site(site)
        c.settle()
        assert c.pending_messages() == 0
        c.check().raise_if_violated()
