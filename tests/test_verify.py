"""Tests for the causality graph and the causal-consistency checker.

The positive direction (real protocol runs pass) is covered by the
integration tests; here the focus is the negative direction — the
checker must *detect* hand-constructed violations of every kind it
claims to check.  A checker that cannot fail is not evidence.
"""

import pytest

from repro.memory.replication import RoundRobinPlacement, full_replication
from repro.memory.store import WriteId
from repro.sim.events import EventKind
from repro.verify.causal_checker import check_causal_consistency
from repro.verify.graph import causality_graph, read_node, write_node
from repro.verify.history import HistoryRecorder


def w(h, t, site, var, value, clock):
    h.record_write_op(time=t, site=site, var=var, value=value,
                      write_id=WriteId(site, clock))
    return WriteId(site, clock)


def r(h, t, site, var, value, wid):
    h.record_read_op(time=t, site=site, var=var, value=value, write_id=wid)


def ap(h, t, site, var, wid):
    h.record_apply(time=t, site=site, var=var, write_id=wid)


class TestGraph:
    def test_program_order_edges(self):
        h = HistoryRecorder()
        w(h, 1, 0, 0, "a", 1)
        r(h, 2, 0, 1, None, None)
        g = causality_graph(h)
        assert g.has_edge(write_node(0, 1), read_node(0, 1))
        assert g.edges[write_node(0, 1), read_node(0, 1)]["order"] == "po"

    def test_read_from_edges(self):
        h = HistoryRecorder()
        wid = w(h, 1, 0, 0, "a", 1)
        r(h, 2, 1, 0, "a", wid)
        g = causality_graph(h)
        assert g.has_edge(write_node(0, 1), read_node(1, 0))
        assert g.edges[write_node(0, 1), read_node(1, 0)]["order"] == "rf"

    def test_unknown_write_id_rejected(self):
        h = HistoryRecorder()
        r(h, 1, 0, 0, "a", WriteId(5, 5))
        with pytest.raises(ValueError, match="unknown write"):
            causality_graph(h)

    def test_cross_variable_rf_rejected(self):
        h = HistoryRecorder()
        wid = w(h, 1, 0, 0, "a", 1)
        r(h, 2, 1, 3, "a", wid)  # reads var 3, write was to var 0
        with pytest.raises(ValueError, match="var"):
            causality_graph(h)


class TestCheckerPasses:
    def test_trivially_consistent(self):
        h = HistoryRecorder()
        wid = w(h, 1, 0, 0, "a", 1)
        r(h, 2, 1, 0, "a", wid)
        report = check_causal_consistency(h)
        assert report.ok
        assert report.n_writes == 1 and report.n_reads == 1

    def test_bottom_read_before_any_write_ok(self):
        h = HistoryRecorder()
        r(h, 1, 1, 0, None, None)
        w(h, 2, 0, 0, "a", 1)
        assert check_causal_consistency(h).ok

    def test_concurrent_overwrite_not_a_violation(self):
        # two *concurrent* writes to x: reading either is legal
        h = HistoryRecorder()
        wa = w(h, 1, 0, 0, "a", 1)
        wb = w(h, 1, 1, 0, "b", 1)
        r(h, 2, 2, 0, "a", wa)
        r(h, 3, 3, 0, "b", wb)
        assert check_causal_consistency(h).ok

    def test_raise_if_violated_on_clean(self):
        h = HistoryRecorder()
        w(h, 1, 0, 0, "a", 1)
        check_causal_consistency(h).raise_if_violated()


class TestCheckerDetectsStaleReads:
    def test_reading_causally_overwritten_value(self):
        h = HistoryRecorder()
        w1 = w(h, 1, 0, 0, "a", 1)
        w2 = w(h, 2, 0, 0, "b", 2)   # same writer: w1 ->po w2
        r(h, 3, 1, 0, "b", w2)       # site 1 saw the newer value...
        r(h, 4, 1, 0, "a", w1)       # ...then regressed to the old one
        report = check_causal_consistency(h)
        assert not report.ok
        assert any(v.kind == "stale-read" for v in report.violations)

    def test_bottom_read_with_write_in_causal_past(self):
        h = HistoryRecorder()
        wx = w(h, 1, 0, 0, "a", 1)
        wy = w(h, 2, 0, 1, "b", 2)
        r(h, 3, 1, 1, "b", wy)      # site 1 depends on wy, hence on wx
        r(h, 4, 1, 0, None, None)   # but reads x = bottom
        report = check_causal_consistency(h)
        assert not report.ok
        assert any(v.kind == "stale-bottom-read" for v in report.violations)

    def test_transitive_stale_read_via_third_site(self):
        # w1 -> w2 via a read at another site, then a stale read of w1
        h = HistoryRecorder()
        w1 = w(h, 1, 0, 0, "a", 1)
        r(h, 2, 1, 0, "a", w1)
        w2 = w(h, 3, 1, 0, "c", 1)   # causally after w1 through the read
        r(h, 4, 2, 0, "c", w2)
        r(h, 5, 2, 0, "a", w1)       # regression
        report = check_causal_consistency(h)
        assert any(v.kind == "stale-read" for v in report.violations)

    def test_raise_if_violated_raises(self):
        h = HistoryRecorder()
        w1 = w(h, 1, 0, 0, "a", 1)
        w2 = w(h, 2, 0, 0, "b", 2)
        r(h, 3, 1, 0, "b", w2)
        r(h, 4, 1, 0, "a", w1)
        with pytest.raises(AssertionError, match="violation"):
            check_causal_consistency(h).raise_if_violated()


class TestCheckerDetectsCycles:
    def test_read_from_own_program_future(self):
        h = HistoryRecorder()
        # site 0 reads the value of a write it only performs afterwards
        r(h, 1, 0, 0, "a", WriteId(0, 1))
        w(h, 2, 0, 0, "a", 1)
        report = check_causal_consistency(h)
        assert not report.ok
        assert report.violations[0].kind == "cyclic-causality"


class TestCheckerApplyOrder:
    def setup_method(self):
        self.placement = full_replication(3, 4)

    def test_correct_apply_order_passes(self):
        h = HistoryRecorder()
        w1 = w(h, 1, 0, 0, "a", 1)
        w2 = w(h, 2, 0, 1, "b", 2)
        for site in range(3):
            ap(h, 3, site, 0, w1)
            ap(h, 4, site, 1, w2)
        assert check_causal_consistency(h, self.placement).ok

    def test_inverted_apply_order_detected(self):
        h = HistoryRecorder()
        w1 = w(h, 1, 0, 0, "a", 1)
        w2 = w(h, 2, 0, 1, "b", 2)
        ap(h, 3, 1, 1, w2)  # site 1 applies the later write first
        ap(h, 4, 1, 0, w1)
        report = check_causal_consistency(h, self.placement)
        assert any(v.kind == "apply-order" for v in report.violations)

    def test_missing_apply_detected(self):
        h = HistoryRecorder()
        w1 = w(h, 1, 0, 0, "a", 1)
        w2 = w(h, 2, 0, 1, "b", 2)
        ap(h, 3, 1, 1, w2)  # applied the successor, never the predecessor
        report = check_causal_consistency(h, self.placement)
        assert any(v.kind == "missing-apply" for v in report.violations)

    def test_predecessor_not_destined_is_fine(self):
        # under partial replication, a predecessor not replicated at the
        # site imposes no apply obligation there
        placement = RoundRobinPlacement(4, 4, 1)  # var v lives only at site v
        h = HistoryRecorder()
        w1 = w(h, 1, 0, 0, "a", 1)   # var 0 -> site 0 only
        w2 = w(h, 2, 0, 1, "b", 2)   # var 1 -> site 1 only
        ap(h, 3, 0, 0, w1)
        ap(h, 4, 1, 1, w2)
        assert check_causal_consistency(h, placement).ok

    def test_phantom_apply_detected(self):
        h = HistoryRecorder()
        ap(h, 1, 0, 0, WriteId(2, 9))  # applying a write nobody performed
        report = check_causal_consistency(h, self.placement)
        assert any(v.kind == "phantom-apply" for v in report.violations)
