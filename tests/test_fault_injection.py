"""Fault-injection tests: paused (stalled) sites.

The paper's system model has no crash-stop failures — processes are
asynchronous and may be arbitrarily slow.  ``Network.pause_site`` models
exactly that extreme: a site that receives nothing for a while.  The
protocols must keep the rest of the system live, preserve causality
throughout, and catch the stalled site up completely on resume.
"""

import pytest

from repro import CausalCluster, ConstantLatency
from repro.memory.store import BOTTOM
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency as CL
from repro.sim.network import Network
from repro.verify.convergence import check_convergence


def make(protocol="optp", n=4, **kw):
    kw.setdefault("latency", ConstantLatency(10.0))
    kw.setdefault("n_vars", 8)
    return CausalCluster(n, protocol=protocol, **kw)


class TestNetworkPause:
    def test_held_messages_counted(self):
        sim = Simulator()
        net = Network(sim, 2, CL(5.0))
        seen = []
        net.register(0, lambda s, m: seen.append(m))
        net.register(1, lambda s, m: seen.append(m))
        net.pause_site(1)
        net.send(0, 1, "x")
        net.send(0, 1, "y")
        sim.run()
        assert seen == []
        assert net.held_count(1) == 2
        assert net.is_paused(1)

    def test_resume_flushes_in_order(self):
        sim = Simulator()
        net = Network(sim, 2, CL(5.0))
        seen = []
        net.register(1, lambda s, m: seen.append(m))
        net.pause_site(1)
        for k in range(5):
            net.send(0, 1, k)
        sim.run()
        net.resume_site(1)
        # the flush goes through the event loop (kernel-clock-consistent
        # delivery timestamps), not synchronously at resume time
        assert seen == []
        assert net.held_count(1) == 0  # already handed to the kernel
        at_resume = sim.now
        sim.run()
        assert seen == [0, 1, 2, 3, 4]
        assert sim.now == at_resume  # zero-delay flush: clock unchanged

    def test_resume_idempotent(self):
        sim = Simulator()
        net = Network(sim, 2, CL(5.0))
        net.register(1, lambda s, m: None)
        net.resume_site(1)  # never paused: no-op
        net.pause_site(1)
        net.resume_site(1)
        net.resume_site(1)
        assert not net.is_paused(1)

    def test_other_sites_unaffected(self):
        sim = Simulator()
        net = Network(sim, 3, CL(5.0))
        seen = {1: [], 2: []}
        net.register(1, lambda s, m: seen[1].append(m))
        net.register(2, lambda s, m: seen[2].append(m))
        net.pause_site(1)
        net.send(0, 1, "held")
        net.send(0, 2, "delivered")
        sim.run()
        assert seen[2] == ["delivered"] and seen[1] == []


class TestProtocolsUnderStall:
    @pytest.mark.parametrize("protocol",
                             ["optp", "opt-track-crp", "full-track", "opt-track"])
    def test_stalled_site_catches_up_consistently(self, protocol):
        kw = {"replication_factor": 2} if protocol in ("full-track", "opt-track") else {}
        c = make(protocol=protocol, **kw)
        c.pause_site(2)
        # a causal chain builds while site 2 hears nothing
        v1 = c.placement.vars_at(0)[0]
        c.write(0, v1, "first")
        c.advance(50.0)
        assert c.read(1, v1) == "first"
        v2 = next(v for v in c.placement.vars_at(1) if v != v1)
        c.write(1, v2, "second")
        c.advance(50.0)
        # stalled site saw nothing it replicates change
        for var in c.placement.vars_at(2):
            if var in (v1, v2):
                assert c.protocols[2].ctx.store.read(var).value is BOTTOM
        c.resume_site(2)
        c.settle()
        c.check().raise_if_violated()
        report = check_convergence(c.protocols, c.history)
        assert report.ok and report.divergent == []

    def test_writes_by_stalled_site_still_flow(self):
        c = make(protocol="optp")
        c.pause_site(3)  # inbound only; outbound keeps working
        c.write(3, 0, "from-stalled")
        c.advance(50.0)
        assert c.read(0, 0) == "from-stalled"
        c.resume_site(3)
        c.settle()
        c.check().raise_if_violated()

    def test_settle_refuses_while_paused(self):
        c = make(protocol="optp")
        c.pause_site(1)
        c.write(0, 0, "x")
        with pytest.raises(RuntimeError, match="paused"):
            c.settle()
        c.resume_site(1)
        c.settle()

    def test_long_stall_buffers_dependent_updates_elsewhere(self):
        # under opt-track, updates can depend on a write the stalled
        # site must serve later; everything must drain on resume
        c = make(protocol="opt-track", n=4, replication_factor=2)
        c.pause_site(1)
        for k in range(12):
            c.write(k % 4 if k % 4 != 1 else 0, k % 8, k)
            c.advance(20.0)
        c.resume_site(1)
        c.settle()
        assert c.pending_messages() == 0
        c.check().raise_if_violated()

    def test_visibility_lag_reflects_stall(self):
        c = make(protocol="optp")
        c.collector.start_measuring()
        c.pause_site(1)
        c.write(0, 0, "x")
        c.advance(500.0)
        c.resume_site(1)
        c.settle()
        assert c.collector.visibility_lags.maximum >= 500.0
