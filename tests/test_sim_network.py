"""Unit tests for the FIFO network and latency models."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.network import (
    AdversarialLatency,
    ConstantLatency,
    LogNormalLatency,
    Network,
    PerPairLatency,
    UniformLatency,
)


def make_net(n=3, latency=None, seed=0):
    sim = Simulator()
    net = Network(sim, n, latency, rng=np.random.default_rng(seed))
    inboxes = {i: [] for i in range(n)}
    for i in range(n):
        net.register(i, lambda src, msg, i=i: inboxes[i].append((src, msg)))
    return sim, net, inboxes


class TestLatencyModels:
    def test_constant(self):
        rng = np.random.default_rng(0)
        model = ConstantLatency(42.0)
        assert model.sample(0, 1, rng) == 42.0

    def test_uniform_within_bounds(self):
        rng = np.random.default_rng(0)
        model = UniformLatency(10.0, 20.0)
        samples = [model.sample(0, 1, rng) for _ in range(200)]
        assert all(10.0 <= s <= 20.0 for s in samples)
        assert max(samples) - min(samples) > 1.0  # actually varies

    def test_uniform_invalid_range(self):
        with pytest.raises(ValueError):
            UniformLatency(20.0, 10.0)
        with pytest.raises(ValueError):
            UniformLatency(-1.0, 10.0)

    def test_lognormal_positive(self):
        rng = np.random.default_rng(1)
        model = LogNormalLatency(median_ms=40.0, sigma=0.8)
        samples = [model.sample(0, 1, rng) for _ in range(500)]
        assert all(s > 0 for s in samples)
        # median should be in the right ballpark
        assert 25.0 < float(np.median(samples)) < 60.0

    def test_adversarial_spans_orders_of_magnitude(self):
        rng = np.random.default_rng(2)
        model = AdversarialLatency(1.0, 1000.0)
        samples = [model.sample(0, 1, rng) for _ in range(500)]
        assert min(samples) < 5.0
        assert max(samples) > 500.0

    def test_per_pair_matrix(self):
        rng = np.random.default_rng(0)
        model = PerPairLatency([[0, 10], [20, 0]])
        assert model.sample(0, 1, rng) == 10.0
        assert model.sample(1, 0, rng) == 20.0

    def test_per_pair_jitter(self):
        rng = np.random.default_rng(0)
        model = PerPairLatency([[0, 10], [20, 0]], jitter_ms=5.0)
        samples = [model.sample(0, 1, rng) for _ in range(100)]
        assert all(10.0 <= s <= 15.0 for s in samples)

    def test_per_pair_validation(self):
        with pytest.raises(ValueError):
            PerPairLatency([[0, 1, 2], [3, 4, 5]])  # not square
        with pytest.raises(ValueError):
            PerPairLatency([[0, -1], [1, 0]])  # negative
        with pytest.raises(ValueError):
            PerPairLatency([[0, 1], [1, 0]], jitter_ms=-1)


class TestNetwork:
    def test_delivery_invokes_receiver(self):
        sim, net, inboxes = make_net()
        net.send(0, 1, "hello")
        sim.run()
        assert inboxes[1] == [(0, "hello")]

    def test_fifo_per_channel_despite_inverted_latencies(self):
        # adversarial latencies would reorder; FIFO must hold anyway
        sim, net, inboxes = make_net(latency=AdversarialLatency(), seed=7)
        for k in range(50):
            net.send(0, 1, k)
        sim.run()
        received = [msg for _, msg in inboxes[1]]
        assert received == list(range(50))

    def test_cross_channel_reordering_is_allowed(self):
        # messages on different channels may interleave arbitrarily;
        # verify at least one run where the later-sent message on a fast
        # channel overtakes an earlier one on a slow channel
        sim, net, inboxes = make_net(latency=PerPairLatency(
            [[0, 100, 1], [1, 0, 1], [1, 1, 0]]
        ))
        order = []
        net.register(1, lambda src, msg: order.append((src, msg)))
        net.send(0, 1, "slow")
        sim.run(until=0.5)
        net.send(2, 1, "fast")
        sim.run()
        assert order == [(2, "fast"), (0, "slow")]

    def test_multicast_skips_self(self):
        sim, net, inboxes = make_net(n=4)
        sent = net.multicast(1, [0, 1, 2, 3], lambda d: f"to-{d}")
        sim.run()
        assert sent == 3
        assert inboxes[1] == []
        assert inboxes[0] == [(1, "to-0")]
        assert inboxes[2] == [(1, "to-2")]

    def test_multicast_per_destination_payloads(self):
        sim, net, inboxes = make_net(n=3)
        net.multicast(0, [1, 2], lambda d: d * 10)
        sim.run()
        assert inboxes[1] == [(0, 10)]
        assert inboxes[2] == [(0, 20)]

    def test_send_to_unknown_site_rejected(self):
        sim, net, _ = make_net(n=2)
        with pytest.raises(ValueError):
            net.send(0, 5, "x")
        with pytest.raises(ValueError):
            net.send(-1, 0, "x")

    def test_unregistered_receiver_raises_at_delivery(self):
        sim = Simulator()
        net = Network(sim, 2, ConstantLatency(1.0))
        net.send(0, 1, "x")
        with pytest.raises(RuntimeError, match="no receiver"):
            sim.run()

    def test_channel_stats_count_messages(self):
        sim, net, _ = make_net()
        net.send(0, 1, "a")
        net.send(0, 1, "b")
        net.send(1, 0, "c")
        assert net.channel_stats(0, 1).messages == 2
        assert net.channel_stats(1, 0).messages == 1
        assert net.total_messages == 3

    def test_deterministic_given_seed(self):
        def run_once():
            sim, net, inboxes = make_net(latency=UniformLatency(), seed=5)
            for k in range(20):
                net.send(k % 3, (k + 1) % 3, k)
            sim.run()
            return {i: list(v) for i, v in inboxes.items()}, sim.now

        assert run_once() == run_once()

    def test_zero_sites_rejected(self):
        with pytest.raises(ValueError):
            Network(Simulator(), 0)
