"""Elastic membership: epoch-based view changes under churn.

The view manager admits joiners through the crash-recovery bootstrap
pipeline (checkpoint restore -> WAL replay -> catch-up), retires leavers
after handing off solely-held replicas, and evicts persistently-suspected
crash-stopped sites.  These tests pin the whole lifecycle:

* multi-epoch runs stay causally consistent and deterministic for all
  four protocols, composed with crashes and partitions;
* operations addressed to departed sites fail fast with typed errors;
* ``FaultPlan`` round-trips membership events through JSON;
* detector flapping under churn leaves retransmit pause/resume balanced;
* the static path builds no view manager at all (zero-overhead rule).
"""

import pytest

from repro import (
    CausalCluster,
    CrashEvent,
    FaultPlan,
    Partition,
    SimulationConfig,
    UniformLatency,
    run_simulation,
)
from repro.sim.failure_detector import DetectorPolicy
from repro.sim.faults import JoinEvent, LeaveEvent, seeded_churn
from repro.sim.membership import (
    DepartedSiteError,
    MembershipError,
    UnknownSiteError,
)
from repro.verify.causal_checker import check_causal_consistency

PROTOCOLS = ["full-track", "opt-track", "opt-track-crp", "optp"]

#: joins + leave + crash/recover + transient partition in one plan
CHAOS_PLAN = FaultPlan.build(
    membership=[JoinEvent(at_ms=350.0), LeaveEvent(site=2, at_ms=1100.0)],
    crashes=[CrashEvent(site=1, at_ms=500.0, recover_ms=800.0)],
    partitions=[Partition([0, 3], 600.0, 750.0)],
)


def churn_run(protocol, plan=CHAOS_PLAN, *, seed=7, **kw):
    cfg = SimulationConfig(
        protocol=protocol, n_sites=4, n_vars=12, ops_per_process=40,
        gap_range_ms=(5.0, 55.0), seed=seed, record_history=True,
        fault_plan=plan, checkpoint_interval_ms=150.0, **kw,
    )
    return run_simulation(cfg)


# ----------------------------------------------------------------------
# multi-epoch correctness, all four protocols
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_churn_run_is_causal_and_multi_epoch(protocol):
    result = churn_run(protocol)
    vm = result.view_manager
    assert vm is not None
    assert vm.view.epoch == 2
    assert vm.stats.joins == 1 and vm.stats.leaves == 1
    # the joiner got the next never-used id; the leaver's id is retired
    assert vm.view.members == (0, 1, 3, 4)
    assert vm.membership_status(2) == "left"
    assert vm.membership_status(4) == "member"
    report = check_causal_consistency(result.history, result.config)
    assert report.ok, report.violations[:5]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_churn_run_is_deterministic(protocol):
    a = churn_run(protocol)
    b = churn_run(protocol)
    assert a.history.events == b.history.events
    assert a.view_manager.view == b.view_manager.view


@pytest.mark.parametrize("protocol", ["opt-track", "full-track"])
def test_crash_stop_site_is_auto_evicted(protocol):
    plan = FaultPlan.build(crashes=[CrashEvent(site=2, at_ms=400.0)])
    result = churn_run(protocol, plan, auto_evict_after_ms=300.0)
    vm = result.view_manager
    assert vm.membership_status(2) == "evicted"
    assert vm.stats.evictions == 1
    assert 2 not in vm.view.members
    report = check_causal_consistency(result.history, result.config)
    assert report.ok, report.violations[:5]


def test_static_run_builds_no_view_manager():
    cfg = SimulationConfig(protocol="opt-track", n_sites=4, n_vars=12,
                           ops_per_process=20, seed=7, record_history=True)
    result = run_simulation(cfg)
    assert result.view_manager is None
    # the broadcast fast path stays active on every protocol instance
    assert all(p._members is None for p in result.protocols)


def test_double_run_differ_accepts_multi_epoch_history():
    from repro.check import double_run

    cfg = SimulationConfig(
        protocol="opt-track", n_sites=4, n_vars=10, ops_per_process=20,
        seed=11, record_history=True, fault_plan=FaultPlan.build(
            membership=[JoinEvent(at_ms=300.0), LeaveEvent(site=0, at_ms=900.0)],
        ),
    )
    report = double_run(cfg)
    assert report.identical, report.format()


# ----------------------------------------------------------------------
# seeded churn generation + plan composition
# ----------------------------------------------------------------------
def test_seeded_churn_is_deterministic_and_sorted():
    a = seeded_churn(5, n_joins=2, n_leaves=2, seed=13)
    b = seeded_churn(5, n_joins=2, n_leaves=2, seed=13)
    assert a == b
    assert [e.at_ms for e in a] == sorted(e.at_ms for e in a)
    assert sum(isinstance(e, JoinEvent) for e in a) == 2
    leavers = [e.site for e in a if isinstance(e, LeaveEvent)]
    assert len(set(leavers)) == 2 and all(0 <= s < 5 for s in leavers)


def test_seeded_churn_avoids_crash_victims():
    crashes = (CrashEvent(site=0, at_ms=500.0), CrashEvent(site=1, at_ms=700.0))
    events = seeded_churn(4, n_joins=0, n_leaves=2, seed=3,
                          avoid={c.site for c in crashes})
    assert {e.site for e in events} <= {2, 3}
    with pytest.raises(ValueError):
        seeded_churn(4, n_leaves=3, avoid={0, 1})
    with pytest.raises(ValueError):
        seeded_churn(2, n_leaves=2)  # would empty the initial membership


def test_fault_plan_json_round_trips_membership():
    plan = FaultPlan.build(
        membership=[JoinEvent(at_ms=350.0), LeaveEvent(site=2, at_ms=1100.0)],
        crashes=[CrashEvent(site=1, at_ms=500.0, recover_ms=800.0)],
        partitions=[Partition([0, 3], 600.0, 750.0)],
    )
    restored = FaultPlan.from_json(plan.to_json(indent=2))
    assert restored.as_dict() == plan.as_dict()
    assert restored.membership == plan.membership
    assert isinstance(restored.membership[0], JoinEvent)
    assert isinstance(restored.membership[1], LeaveEvent)
    # an empty plan stays empty through the round trip
    empty = FaultPlan.build()
    assert FaultPlan.from_json(empty.to_json()).as_dict() == empty.as_dict()


def test_plan_validation_rejects_churn_conflicts():
    with pytest.raises(ValueError):
        FaultPlan.build(
            membership=[LeaveEvent(site=1, at_ms=600.0)],
            crashes=[CrashEvent(site=1, at_ms=400.0)],
        ).validate()


# ----------------------------------------------------------------------
# interactive cluster: join / leave / evict lifecycle
# ----------------------------------------------------------------------
def make_cluster(**kw):
    kw.setdefault("protocol", "opt-track")
    kw.setdefault("n_vars", 6)
    kw.setdefault("latency", UniformLatency(2.0, 10.0))
    return CausalCluster(4, **kw)


def test_join_site_serves_reads_and_writes():
    cluster = make_cluster()
    cluster.write(0, var=0, value="before")
    cluster.settle()
    joiner = cluster.join_site()
    assert joiner == 4
    assert cluster.view.epoch == 1
    assert cluster.membership_status(joiner) == "member"
    cluster.write(joiner, var=1, value="from-joiner")
    cluster.settle()
    assert cluster.read(joiner, var=0) == "before"
    assert cluster.read(0, var=1) == "from-joiner"
    cluster.check().raise_if_violated()


def test_leave_hands_off_solely_held_replicas():
    cluster = CausalCluster(4, protocol="opt-track", n_vars=4,
                            replication_factor=1,
                            latency=UniformLatency(2.0, 10.0))
    # with p=1 and round-robin placement, var 1 lives only at site 1
    assert tuple(cluster.placement.replicas(1)) == (1,)
    cluster.write(1, var=1, value="precious")
    cluster.settle()
    cluster.leave_site(1)
    assert cluster.membership_status(1) == "left"
    assert cluster.view_manager.stats.handoffs >= 1
    # the successor now holds the replica; a remote read still works
    assert 1 not in cluster.placement.replicas(1)
    assert cluster.read(0, var=1) == "precious"
    cluster.check().raise_if_violated()


def test_evict_degrades_solely_held_replicas_to_bottom():
    cluster = CausalCluster(4, protocol="opt-track", n_vars=4,
                            replication_factor=1, crash_recovery=True,
                            fault_plan=FaultPlan.build(),
                            latency=UniformLatency(2.0, 10.0))
    cluster.write(1, var=1, value="doomed")
    cluster.settle()
    cluster.crash_site(1)
    cluster.evict_site(1)
    assert cluster.membership_status(1) == "evicted"
    assert cluster.view_manager.stats.lost_variables >= 1
    assert cluster.read(0, var=1) is None  # BOTTOM, not stale garbage
    cluster.check().raise_if_violated()


def test_operations_on_departed_sites_fail_fast():
    cluster = make_cluster(crash_recovery=True)
    cluster.write(0, var=0, value=1)
    cluster.settle()
    cluster.leave_site(2)

    with pytest.raises(DepartedSiteError) as exc:
        cluster.write(2, var=0, value=2)
    assert "site 2" in str(exc.value) and "left" in str(exc.value)
    with pytest.raises(DepartedSiteError):
        cluster.read(2, var=0)
    with pytest.raises(DepartedSiteError):
        cluster.recover_site(2)
    with pytest.raises(DepartedSiteError):
        cluster.resume_site(2)
    with pytest.raises(DepartedSiteError):
        cluster.leave_site(2)  # cannot leave twice

    # departed errors are still MembershipError (and catchable broadly)
    assert issubclass(DepartedSiteError, MembershipError)
    # surviving sites keep working
    cluster.write(0, var=1, value=3)
    cluster.settle()
    assert cluster.read(1, var=1) == 3


def test_unknown_site_errors_name_site_and_capacity():
    cluster = make_cluster(crash_recovery=True)
    for fn in (cluster.recover_site, cluster.resume_site, cluster.pause_site):
        with pytest.raises(UnknownSiteError) as exc:
            fn(99)
        assert "99" in str(exc.value)
    # UnknownSiteError keeps ValueError compatibility for old callers
    with pytest.raises(ValueError):
        cluster.recover_site(99)
    assert cluster.membership_status(99) == "unknown"


def test_membership_status_without_view_manager():
    cluster = make_cluster()
    assert cluster.view.epoch == 0
    assert cluster.view_manager is None
    assert cluster.membership_status(0) == "member"
    assert cluster.membership_status(7) == "unknown"


# ----------------------------------------------------------------------
# failure-detector flapping under churn (pause/resume accounting)
# ----------------------------------------------------------------------
def test_detector_flapping_under_churn_balances_pause_resume():
    cluster = make_cluster(
        crash_recovery=True,
        fault_plan=FaultPlan.build(),
        detector=DetectorPolicy(heartbeat_interval_ms=40.0, timeout_ms=150.0),
    )
    transport = cluster.network.transport
    detector = cluster.crash_manager.detector
    assert transport is not None and detector is not None

    calls = {"pause": 0, "resume": 0}
    orig_pause, orig_resume = transport.pause_pair, transport.resume_pair

    def pause(src, dst):
        calls["pause"] += 1
        orig_pause(src, dst)

    def resume(src, dst, **kw):
        calls["resume"] += 1
        orig_resume(src, dst, **kw)

    transport.pause_pair, transport.resume_pair = pause, resume

    cluster.write(0, var=0, value=1)
    cluster.settle()

    # flap twice: sever site 2 at the wire long enough to trip false
    # suspicions, then heal and let heartbeats clear them
    for _ in range(2):
        cluster.partition([2])
        cluster.advance(600.0)
        cluster.heal()
        cluster.advance(600.0)
    assert detector.false_suspicions >= 1

    # churn while the detector is live: join then retire the flapped site
    cluster.join_site()
    cluster.leave_site(2)
    cluster.settle()

    # every pause was either resumed or dropped with the departed site;
    # no live pair is left silently paused
    assert calls["pause"] >= 1
    assert calls["pause"] >= calls["resume"]
    assert not transport.paused_pairs
    assert not detector.suspected
    cluster.check().raise_if_violated()
