"""Tests for the reproduce-all driver and the new CLI subcommands."""

import pytest

from repro.cli import main
from repro.experiments.figures import EXHIBIT_RUNNERS, reproduce_all


class TestReproduceAll:
    def test_all_paper_exhibits_covered(self):
        assert set(EXHIBIT_RUNNERS) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "table2", "table3", "table4", "eq2",
        }

    def test_writes_csv_and_report(self, tmp_path):
        report = reproduce_all(tmp_path, ops_per_process=10,
                               exhibits=["eq2", "fig5"])
        assert report.exists()
        assert (tmp_path / "eq2.csv").exists()
        assert (tmp_path / "fig5.csv").exists()
        assert (tmp_path / "fig5.txt").exists()  # chart for figures
        text = report.read_text()
        assert "## eq2" in text and "## fig5" in text

    def test_csv_has_rows(self, tmp_path):
        reproduce_all(tmp_path, ops_per_process=10, exhibits=["table3"])
        lines = (tmp_path / "table3.csv").read_text().splitlines()
        assert len(lines) == 7  # header + 6 n-values

    def test_unknown_exhibit_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown exhibits"):
            reproduce_all(tmp_path, ops_per_process=5, exhibits=["fig99"])

    def test_progress_callback(self, tmp_path):
        lines = []
        reproduce_all(tmp_path, ops_per_process=10, exhibits=["eq2"],
                      progress=lines.append)
        assert len(lines) == 1 and lines[0].startswith("eq2:")

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        reproduce_all(target, ops_per_process=10, exhibits=["eq2"])
        assert (target / "REPORT.md").exists()


class TestNewCliCommands:
    def test_reproduce_command(self, tmp_path, capsys):
        rc = main(["reproduce", "--outdir", str(tmp_path), "--ops", "10",
                   "--only", "eq2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "report written" in out
        assert (tmp_path / "eq2.csv").exists()

    def test_advise_partial(self, capsys):
        rc = main(["advise", "-n", "20", "-w", "0.7", "--payload", "500000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "partial replication" in out
        assert "eq. (2)" in out

    def test_advise_full(self, capsys):
        rc = main(["advise", "-n", "3", "-w", "0.05"])
        assert rc == 0
        assert "full replication" in capsys.readouterr().out

    def test_advise_requires_args(self):
        with pytest.raises(SystemExit):
            main(["advise"])
