"""Chaos-soak harness tests: overload events, flash crowds, invariants."""

import json

import pytest

from repro.sim.faults import FaultPlan, OverloadEvent
from repro.soak import (
    SOAK_PROTOCOLS,
    build_soak_plan,
    canonical_summary,
    check_soak_invariants,
    compare_rto_policies,
    soak_config,
    soak_matrix,
    soak_run,
)


class TestOverloadEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadEvent((), 0.0, 100.0, 10.0)  # no sites
        with pytest.raises(ValueError):
            OverloadEvent((0,), 100.0, 50.0, 10.0)  # end before start
        with pytest.raises(ValueError):
            OverloadEvent((0,), 0.0, 100.0, 0.0)  # non-positive interval
        with pytest.raises(ValueError):
            OverloadEvent((-1,), 0.0, 100.0, 10.0)  # negative site

    def test_sites_sorted_and_deduped(self):
        ov = OverloadEvent([3, 1, 3, 2], 0.0, 100.0, 10.0)
        assert ov.sites == (1, 2, 3)

    def test_ticks_cover_the_window(self):
        ov = OverloadEvent((0,), 100.0, 150.0, 20.0)
        assert ov.ticks() == [100.0, 120.0, 140.0]

    def test_plan_round_trip(self):
        plan = build_soak_plan(5)
        assert plan.overloads
        back = FaultPlan.from_dict(json.loads(json.dumps(plan.as_dict())))
        assert back == plan


class TestSoakInvariants:
    @pytest.mark.parametrize("protocol", SOAK_PROTOCOLS)
    def test_protocol_survives_the_soak(self, protocol):
        result, _ = soak_run(soak_config(protocol, 1, ops=30))
        assert check_soak_invariants(result) == []

    def test_chaos_counters_engaged(self):
        result, _ = soak_run(soak_config("opt-track", 1, ops=30))
        col = result.collector
        assert col.injected_drops > 0
        assert col.retransmissions > 0
        assert col.overload_injected > 0
        driver = result.overload_driver
        assert driver is not None
        assert driver.injected == col.overload_injected

    def test_same_seed_double_run_is_byte_identical(self):
        a, _ = soak_run(soak_config("optp", 2, ops=30))
        b, _ = soak_run(soak_config("optp", 2, ops=30))
        assert canonical_summary(a) == canonical_summary(b)

    def test_different_seeds_diverge(self):
        a, _ = soak_run(soak_config("optp", 1, ops=30))
        b, _ = soak_run(soak_config("optp", 2, ops=30))
        assert canonical_summary(a) != canonical_summary(b)

    def test_backpressure_defers_but_never_starves(self):
        result, _ = soak_run(soak_config("optp", 1, ops=30))
        assert result.collector.backpressure_delays > 0
        # every site still finished its whole schedule
        undrained = [p.site for p in result.protocols if p.pending_count]
        assert undrained == []


class TestRtoComparison:
    def test_adaptive_beats_fixed_on_spiky_channels(self):
        comp = compare_rto_policies(ops=30)
        assert comp["fixed"]["spurious_retransmissions"] > 0
        assert comp["adaptive_fewer_spurious"]


class TestSoakMatrix:
    def test_matrix_writes_report_and_artifacts(self, tmp_path):
        report = soak_matrix(
            protocols=("optp",), seeds=(1,), ops=30,
            check_determinism=False, compare_rto=False, out_dir=tmp_path,
        )
        assert report.ok
        data = json.loads((tmp_path / "soak_report.json").read_text())
        assert data["ok"] is True
        assert data["cells"][0]["protocol"] == "optp"
        assert (tmp_path / "soak_optp_s1.prom").exists()
        assert (tmp_path / "soak_optp_s1.json").exists()
