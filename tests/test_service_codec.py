"""Wire-codec contract tests: WIRE_FIELDS registry + round-trip fidelity."""

import dataclasses
import json

import pytest

from repro.check.sanitizer import fingerprint
from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import PiggybackEntry
from repro.core.messages import (
    CRPSM,
    FetchMessage,
    FullTrackRM,
    FullTrackSM,
    OptPSM,
    OptTrackRM,
    OptTrackSM,
)
from repro.memory.store import WriteId
from repro.service.codec import (
    MAX_FRAME_BYTES,
    WIRE_FIELDS,
    CodecError,
    decode_message,
    decode_value,
    dumps,
    encode_message,
    encode_value,
    loads,
    pack_frame,
    unpack_length,
)

ALL_MESSAGE_TYPES = (
    FetchMessage, FullTrackSM, FullTrackRM,
    OptTrackSM, OptTrackRM, CRPSM, OptPSM,
)


def _matrix(n=3):
    m = MatrixClock(n)
    m.m[0][1] = 4
    m.m[2][2] = 9
    return m


def _vector(n=3):
    v = VectorClock(n)
    v.v[1] = 7
    return v


def _log():
    return (
        PiggybackEntry(0, 3, frozenset({1, 2})),
        PiggybackEntry(2, 5, frozenset({0})),
    )


#: one representative instance per sendable type, exercising every
#: value-algebra branch (WriteId, clocks, logs, tuples, None, floats)
SAMPLES = [
    FetchMessage(var=3, reader=1, request_id=17,
                 requirements=((0, 2), (2, 5))),
    FullTrackSM(var=0, value="v0", write_id=WriteId(0, 1),
                matrix=_matrix(), issued_at=12.5),
    FullTrackRM(var=1, value=None, write_id=None,
                matrix=_matrix(), request_id=4),
    OptTrackSM(var=2, value=41, write_id=WriteId(1, 2),
               log=_log(), issued_at=0.0),
    OptTrackRM(var=2, value={"k": [1, 2]}, write_id=WriteId(2, 9),
               log=_log(), request_id=8),
    CRPSM(var=5, value=3.25, write_id=WriteId(2, 3),
          log=_log(), issued_at=99.0),
    OptPSM(var=4, value=True, write_id=WriteId(1, 6),
           vector=_vector(), issued_at=7.0),
]


class TestRegistry:
    def test_every_sendable_type_is_registered(self):
        assert set(WIRE_FIELDS) == set(ALL_MESSAGE_TYPES)

    def test_registry_matches_dataclass_fields_exactly(self):
        # a field added/renamed/reordered on a message without a codec
        # update must fail HERE, not corrupt frames on the wire
        for cls, wire_fields in WIRE_FIELDS.items():
            declared = tuple(f.name for f in dataclasses.fields(cls))
            assert wire_fields == declared, cls.__name__

    def test_every_type_has_a_sample(self):
        assert {type(s) for s in SAMPLES} == set(ALL_MESSAGE_TYPES)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "message", SAMPLES, ids=lambda m: type(m).__name__
    )
    def test_message_roundtrips_equal_and_fingerprinted(self, message):
        decoded = decode_message(encode_message(message))
        assert type(decoded) is type(message)
        assert decoded == message
        # structural fingerprint (PR-4 sanitizer): catches lookalikes
        # __eq__ would accept, e.g. list-vs-tuple or int-vs-float drift
        assert fingerprint(decoded) == fingerprint(message)

    @pytest.mark.parametrize(
        "message", SAMPLES, ids=lambda m: type(m).__name__
    )
    def test_encoding_is_canonical(self, message):
        # equal values encode to identical bytes (and re-encoding the
        # decoded copy is byte-stable)
        first = encode_message(message)
        assert encode_message(decode_message(first)) == first

    def test_unknown_type_is_loud(self):
        class Rogue:
            pass

        with pytest.raises(CodecError, match="not a registered wire type"):
            encode_message(Rogue())

    def test_field_count_mismatch_is_loud(self):
        wire = json.loads(encode_message(SAMPLES[0]))
        wire["f"].append(0)
        with pytest.raises(CodecError, match="expects"):
            decode_message(dumps(wire))


class TestValueAlgebra:
    @pytest.mark.parametrize("value", [
        None, True, 0, -3, 2.5, "x", [1, "a"], {"k": 1},
        WriteId(1, 2), (1, (2, 3)), frozenset({3, 1}),
        {"!weird": 1, "!!worse": 2},  # tag-key escaping
    ])
    def test_values_roundtrip(self, value):
        assert decode_value(json.loads(dumps(encode_value(value)))) == value

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(CodecError, match="keys must be strings"):
            encode_value({1: "x"})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            dumps(float("nan"))

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError, match="unknown wire tag"):
            decode_value({"!": "nope"})


class TestFraming:
    def test_frame_roundtrip(self):
        frame = pack_frame({"k": "ack", "src": 1, "cum": 9})
        size = unpack_length(frame[:4])
        assert loads(frame[4:4 + size]) == {"k": "ack", "src": 1, "cum": 9}

    def test_length_cap_enforced(self):
        huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(CodecError, match="exceeds the cap"):
            unpack_length(huge)

    def test_malformed_payload_is_codec_error(self):
        with pytest.raises(CodecError, match="malformed"):
            loads(b"{nope")
