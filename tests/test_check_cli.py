"""CLI-level tests for ``python -m repro.check``: exit codes, --explain,
and the JSON/SARIF report schemas (golden files under tests/golden/).

The golden fixture is a fixed synthetic project with exactly one layer
violation and one forbidden effect, so the reports exercise findings,
the effect table, and the certificate in one stable document.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.check.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
GOLDEN = Path(__file__).parent / "golden"

CONTRACT = """
[project]
package = "app"

[layers.core]
modules = ["app.core"]
may_import = []

[layers.sim]
modules = ["app.sim"]
may_import = ["core"]

[layers.harness]
modules = ["app"]
may_import = ["*"]

[effects]
pure_trees = ["app.core"]
forbidden = ["WALL_CLOCK", "UNSEEDED_RNG", "FILE_IO", "NETWORK", "SIM_INTERNAL", "MUTATES_SENT_PAYLOAD"]
"""

CLEAN_FILES = {
    "src/app/__init__.py": "",
    "src/app/core/__init__.py": "",
    "src/app/sim/__init__.py": "",
    "src/app/core/proto.py": """
        def step(state: int) -> int:
            return state + 1
    """,
}

DIRTY_FILES = {
    **CLEAN_FILES,
    "src/app/sim/engine.py": """
        class Simulator:
            pass
    """,
    "src/app/core/proto.py": """
        import time

        from app.sim.engine import Simulator

        def stamp() -> float:
            return time.time()

        def boot():
            return Simulator()
    """,
}


def write_project(tmp_path: Path, files: dict[str, str]) -> None:
    (tmp_path / "layers.toml").write_text(textwrap.dedent(CONTRACT))
    for rel, src in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))


@pytest.fixture
def clean_project(tmp_path, monkeypatch):
    write_project(tmp_path, CLEAN_FILES)
    monkeypatch.chdir(tmp_path)
    return tmp_path


@pytest.fixture
def dirty_project(tmp_path, monkeypatch):
    write_project(tmp_path, DIRTY_FILES)
    monkeypatch.chdir(tmp_path)
    return tmp_path


ARGS = ["--no-lint", "--no-mypy", "--effects", "--layers"]


# ----------------------------------------------------------------------
# exit codes
# ----------------------------------------------------------------------
class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_project):
        assert main(ARGS) == 0

    def test_findings_exit_one(self, dirty_project):
        assert main(ARGS) == 1

    def test_bad_contract_exits_two(self, clean_project, capsys):
        (clean_project / "layers.toml").write_text(
            "[layers.core]\nmodules = []\n"
        )
        assert main(ARGS) == 2
        assert "contract error" in capsys.readouterr().err

    def test_unknown_explain_exits_two(self):
        assert main(["--explain", "EFF999"]) == 2

    def test_missing_baseline_is_a_note_not_an_error(
        self, clean_project, capsys
    ):
        assert main(ARGS) == 0
        assert "no effect baseline" in capsys.readouterr().out


# ----------------------------------------------------------------------
# --explain / --list-rules coverage of the analyzer codes
# ----------------------------------------------------------------------
class TestExplain:
    @pytest.mark.parametrize("code", [
        "EFF001", "EFF002", "EFF003", "LAY001", "LAY002", "LAY003",
        "SIM000", "SIM005",
    ])
    def test_explain_known_codes(self, code, capsys):
        assert main(["--explain", code]) == 0
        out = capsys.readouterr().out
        assert code in out
        assert "why :" in out and "fix :" in out

    def test_list_rules_covers_all_codes(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM001", "SIM008", "SIM000", "SIM999",
                     "EFF001", "EFF002", "EFF003",
                     "LAY001", "LAY002", "LAY003"):
            assert code in out


# ----------------------------------------------------------------------
# JSON report schema
# ----------------------------------------------------------------------
class TestJsonReport:
    def run_json(self, capsys) -> tuple[int, dict]:
        code = main(ARGS + ["--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        return code, doc

    def test_schema_fields(self, dirty_project, capsys):
        code, doc = self.run_json(capsys)
        assert code == 1
        assert doc["schema_version"] == 1
        assert doc["tool"] == "repro.check"
        for f in doc["findings"]:
            assert set(f) == {"code", "path", "line", "col",
                              "message", "hint"}
        assert doc["summary"]["total"] == len(doc["findings"])
        assert sum(doc["summary"]["by_code"].values()) == len(doc["findings"])

    def test_findings_content(self, dirty_project, capsys):
        _, doc = self.run_json(capsys)
        codes = {f["code"] for f in doc["findings"]}
        assert codes == {"EFF001", "LAY001"}

    def test_effect_table_and_certificate(self, dirty_project, capsys):
        _, doc = self.run_json(capsys)
        assert doc["effects"]["app.core.proto.stamp"] == ["WALL_CLOCK"]
        assert doc["certificate"]["certified"] is False
        assert doc["certificate"]["pure_trees"] == ["app.core"]

    def test_clean_tree_is_certified(self, clean_project, capsys):
        code, doc = self.run_json(capsys)
        assert code == 0
        assert doc["findings"] == []
        assert doc["certificate"]["certified"] is True

    def test_report_file_written_in_human_mode(self, dirty_project, capsys):
        out_path = dirty_project / "report.json"
        code = main(ARGS + ["--report", str(out_path)])
        assert code == 1
        doc = json.loads(out_path.read_text())
        assert doc["schema_version"] == 1
        # human findings still went to stdout
        assert "EFF001" in capsys.readouterr().out


# ----------------------------------------------------------------------
# SARIF report schema
# ----------------------------------------------------------------------
class TestSarifReport:
    def test_sarif_document(self, dirty_project, capsys):
        code = main(ARGS + ["--format", "sarif"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"EFF001", "LAY001", "SIM001"} <= rule_ids
        assert run["results"], "findings must surface as results"
        for res in run["results"]:
            assert res["ruleId"] in rule_ids
            loc = res["locations"][0]["physicalLocation"]
            assert loc["region"]["startLine"] >= 1
            assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"


# ----------------------------------------------------------------------
# baseline workflow through the CLI
# ----------------------------------------------------------------------
class TestBaselineCli:
    def test_write_then_gate(self, dirty_project, capsys):
        # EFF001/LAY001 still fail, but drift is separate: write the
        # baseline, then the same tree produces no EFF002
        main(ARGS + ["--write-baseline"])
        assert (dirty_project / "EFFECTS_BASELINE.json").is_file()
        capsys.readouterr()
        main(ARGS + ["--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert "EFF002" not in {f["code"] for f in doc["findings"]}

    def test_drift_detected(self, dirty_project, capsys):
        main(ARGS + ["--write-baseline"])
        proto = dirty_project / "src/app/core/proto.py"
        proto.write_text(proto.read_text() + textwrap.dedent("""
            def leak(name: str) -> str:
                with open(name) as fh:
                    return fh.read()
        """))
        capsys.readouterr()
        assert main(ARGS + ["--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert "EFF002" in {f["code"] for f in doc["findings"]}


# ----------------------------------------------------------------------
# golden files: the full report documents, byte-exact
# ----------------------------------------------------------------------
class TestGolden:
    def normalize(self, text: str) -> str:
        return text.replace("\r\n", "\n")

    def test_json_golden(self, dirty_project, capsys):
        main(ARGS + ["--format", "json"])
        got = self.normalize(capsys.readouterr().out)
        want = (GOLDEN / "check_report.json").read_text()
        assert got == want

    def test_sarif_golden(self, dirty_project, capsys):
        main(ARGS + ["--format", "sarif"])
        got = self.normalize(capsys.readouterr().out)
        want = (GOLDEN / "check_report.sarif").read_text()
        assert got == want


# ----------------------------------------------------------------------
# the real tree, through the top-level CLI dispatch
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_repro_check_certifies_live_tree(self, monkeypatch):
        from repro.cli import main as repro_main

        monkeypatch.chdir(REPO_ROOT)
        assert repro_main(["check", "--effects", "--layers"]) == 0

    def test_live_baseline_is_current(self, monkeypatch, capsys):
        """The committed baseline matches a fresh analysis (no drift)."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(ARGS + ["--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["certificate"]["certified"] is True
        committed = json.loads(
            (REPO_ROOT / "EFFECTS_BASELINE.json").read_text()
        )
        assert doc["effects"] == committed["effects"]
