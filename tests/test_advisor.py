"""Tests for the replication advisor."""

import pytest

from repro.analysis.advisor import (
    Recommendation,
    WorkloadProfile,
    recommend_replication,
)


class TestProfileValidation:
    def test_needs_two_sites(self):
        with pytest.raises(ValueError):
            WorkloadProfile(n_sites=1, write_rate=0.5)

    def test_write_rate_bounds(self):
        with pytest.raises(ValueError):
            WorkloadProfile(n_sites=5, write_rate=1.5)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(n_sites=5, write_rate=0.5, payload_bytes=-1)

    def test_default_replication_factor_is_papers(self):
        assert WorkloadProfile(n_sites=10, write_rate=0.5).p == 3
        assert WorkloadProfile(n_sites=10, write_rate=0.5,
                               replication_factor=5).p == 5


class TestRecommendations:
    def test_write_intensive_large_system_goes_partial(self):
        rec = recommend_replication(WorkloadProfile(
            n_sites=20, write_rate=0.7, payload_bytes=679_000,
        ))
        assert rec.replication == "partial"
        assert rec.protocol == "opt-track"
        assert rec.message_ratio < 1.0
        assert rec.partial_transfer_bytes < rec.full_transfer_bytes

    def test_read_heavy_tiny_system_goes_full(self):
        rec = recommend_replication(WorkloadProfile(
            n_sites=3, write_rate=0.1, payload_bytes=0.0,
        ))
        assert rec.replication == "full"
        assert rec.protocol == "opt-track-crp"

    def test_crossover_matches_eq2(self):
        rec = recommend_replication(WorkloadProfile(n_sites=9, write_rate=0.5))
        assert rec.crossover_write_rate == pytest.approx(0.2)

    def test_storage_ledger(self):
        rec = recommend_replication(WorkloadProfile(n_sites=10, write_rate=0.5))
        assert rec.storage_copies_partial == 3
        assert rec.storage_copies_full == 10
        assert rec.remote_read_fraction == pytest.approx(0.7)

    def test_rationale_mentions_eq2(self):
        rec = recommend_replication(WorkloadProfile(n_sites=10, write_rate=0.5))
        assert any("eq. (2)" in line for line in rec.rationale)

    def test_payload_tilts_split_decisions(self):
        # just below the count threshold, a huge payload still makes
        # partial replication the cheaper transfer choice
        n = 5
        profile = WorkloadProfile(n_sites=n, write_rate=0.30,
                                  payload_bytes=679_000)
        rec = recommend_replication(profile)
        assert rec.crossover_write_rate == pytest.approx(1 / 3)
        # count criterion says full; transfer criterion decides
        if rec.partial_transfer_bytes < rec.full_transfer_bytes:
            assert rec.replication == "partial"
            assert any("split" in line for line in rec.rationale)

    def test_message_counts_consistent_with_models(self):
        from repro.analysis.model import (
            full_replication_message_count,
            partial_replication_message_count,
        )

        profile = WorkloadProfile(n_sites=12, write_rate=0.4, operations=500)
        rec = recommend_replication(profile)
        assert rec.partial_messages == pytest.approx(
            partial_replication_message_count(12, profile.p,
                                              profile.writes, profile.reads)
        )
        assert rec.full_messages == pytest.approx(
            full_replication_message_count(12, profile.writes)
        )
