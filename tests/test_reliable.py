"""Unit tests for the fault injector and the reliable delivery layer."""

import math

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.faults import (
    ChannelFaults,
    FaultInjector,
    FaultPlan,
    Partition,
)
from repro.sim.network import ConstantLatency, Network, UniformLatency
from repro.sim.reliable import ACK_SIZE_BYTES, RetransmitPolicy

FAST = RetransmitPolicy(base_rto_ms=50.0, max_rto_ms=800.0, jitter_ms=5.0)


def make_net(n=2, drop=0.0, dup=0.0, spike=0.0, partitions=(), seed=0,
             latency=None, collector=None, policy=None):
    sim = Simulator()
    plan = FaultPlan.uniform(drop_rate=drop, dup_rate=dup, spike_rate=spike,
                             partitions=partitions)
    injector = FaultInjector(plan, rng=np.random.default_rng(seed))
    net = Network(sim, n, latency or ConstantLatency(10.0),
                  rng=np.random.default_rng(1), faults=injector,
                  collector=collector, retransmit=policy or FAST)
    return sim, net, injector


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChannelFaults(drop_rate=1.0)
        with pytest.raises(ValueError):
            ChannelFaults(dup_rate=-0.1)
        with pytest.raises(ValueError):
            ChannelFaults(spike_ms=(100.0, 50.0))

    def test_partition_validated(self):
        with pytest.raises(ValueError):
            Partition([], 0.0, 10.0)
        with pytest.raises(ValueError):
            Partition([0], 10.0, 5.0)

    def test_partition_severs_both_directions_only_in_window(self):
        p = Partition([0], 100.0, 200.0)
        assert not p.severs(0, 1, 50.0)
        assert p.severs(0, 1, 100.0)
        assert p.severs(1, 0, 150.0)
        assert not p.severs(0, 1, 200.0)  # healed
        assert not p.severs(1, 2, 150.0)  # both outside the group

    def test_plan_is_hashable(self):
        plan = FaultPlan.build(
            default=ChannelFaults(drop_rate=0.1),
            channels={(0, 1): ChannelFaults(dup_rate=0.2)},
            partitions=(Partition([0], 0.0, 10.0),),
        )
        hash(plan)  # usable inside frozen SimulationConfig
        assert plan.faults_for(0, 1).dup_rate == 0.2
        assert plan.faults_for(1, 0).drop_rate == 0.1
        assert plan.heal_times() == [10.0]

    def test_injector_deterministic_per_seed(self):
        def decisions(seed):
            inj = FaultInjector(FaultPlan.uniform(drop_rate=0.4, dup_rate=0.3),
                                rng=np.random.default_rng(seed))
            return [inj.decide(0, 1, 0.0) for _ in range(200)]

        assert decisions(5) == decisions(5)
        assert decisions(5) != decisions(6)

    def test_quiet_plan_draws_nothing(self):
        inj = FaultInjector(FaultPlan())
        before = inj.rng.bit_generator.state["state"]["state"]
        for _ in range(50):
            d = inj.decide(0, 1, 0.0)
            assert not d.drop and d.duplicates == 0 and d.extra_delay_ms == 0.0
        assert inj.rng.bit_generator.state["state"]["state"] == before

    def test_dynamic_partitions(self):
        inj = FaultInjector(FaultPlan())
        assert not inj.severed(0, 1, 5.0)
        inj.start_partition({1}, 5.0)
        assert inj.severed(0, 1, 5.0) and inj.severed(1, 0, 6.0)
        assert inj.unhealed_partitions(6.0) == [frozenset({1})]
        healed = inj.heal_partitions(9.0)
        assert healed == [frozenset({1})]
        assert not inj.severed(0, 1, 9.0)
        assert inj.unhealed_partitions(9.0) == []


class TestReliableDelivery:
    def test_lossless_channel_delivers_in_order(self):
        sim, net, _ = make_net()
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(10):
            net.send(0, 1, k)
        sim.run()
        assert got == list(range(10))

    def test_drops_recovered_exactly_once(self):
        sim, net, inj = make_net(drop=0.4, seed=3)
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(30):
            net.send(0, 1, k)
        sim.run()
        assert got == list(range(30))
        assert inj.drops > 0  # the chaos was real
        assert net.transport.retransmissions > 0
        assert net.transport.unacked_count() == 0

    def test_duplicates_suppressed(self):
        sim, net, inj = make_net(dup=0.5, seed=4)
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(20):
            net.send(0, 1, k)
        sim.run()
        assert got == list(range(20))
        assert inj.duplicates > 0
        assert net.transport.duplicate_drops > 0

    def test_latency_spikes_cannot_reorder_above_transport(self):
        # spikes reorder raw packets (no FIFO clamp on the chaos path);
        # the reassembly buffer must hide that from the application
        sim, net, inj = make_net(spike=0.5, seed=5,
                                 latency=UniformLatency(1.0, 20.0))
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(40):
            net.send(0, 1, k)
        sim.run()
        assert got == list(range(40))
        assert inj.spikes > 0

    def test_partition_blocks_then_heals(self):
        sim, net, inj = make_net(partitions=(Partition([1], 0.0, 500.0),))
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(5):
            net.send(0, 1, k)
        sim.run(until=499.0)
        assert got == []  # everything severed
        assert inj.partition_drops > 0
        sim.run()
        assert got == list(range(5))  # heal triggers eager retransmission

    def test_recovery_latency_recorded_per_site(self):
        from repro.metrics.collector import MetricsCollector

        col = MetricsCollector()
        sim, net, _ = make_net(partitions=(Partition([1], 0.0, 300.0),),
                               collector=col)
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        for k in range(4):
            net.send(0, 1, k)
        sim.run()
        assert col.recovery_latency.count == 1
        assert 1 in col.recovery_by_site
        # backlog drained one constant-latency hop after the heal
        assert col.recovery_latency.mean == pytest.approx(10.0 + 10.0, abs=5.0)

    def test_ack_overhead_accounted(self):
        from repro.metrics.collector import MetricsCollector

        col = MetricsCollector()
        sim, net, _ = make_net(collector=col)
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        for k in range(7):
            net.send(0, 1, k)
        sim.run()
        assert col.acks_sent == 7
        assert col.ack_bytes == 7 * ACK_SIZE_BYTES

    def test_backoff_caps_at_max_rto(self):
        sim, net, _ = make_net(partitions=(Partition([1], 0.0, math.inf),))
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        net.send(0, 1, "x")
        sim.run(until=10_000.0)
        ch = net.transport.channel(0, 1)
        assert ch.rto == FAST.max_rto_ms
        assert ch.unacked  # still trying, never delivered

    def test_bidirectional_traffic(self):
        sim, net, _ = make_net(drop=0.3, seed=9)
        got = {0: [], 1: []}
        net.register(0, lambda s, m: got[0].append(m))
        net.register(1, lambda s, m: got[1].append(m))
        for k in range(15):
            net.send(0, 1, ("a", k))
            net.send(1, 0, ("b", k))
        sim.run()
        assert got[1] == [("a", k) for k in range(15)]
        assert got[0] == [("b", k) for k in range(15)]


class TestRetransmitPolicyValidation:
    def test_rto_bounds(self):
        with pytest.raises(ValueError, match="base_rto_ms"):
            RetransmitPolicy(base_rto_ms=0.0)
        with pytest.raises(ValueError, match="base_rto_ms"):
            RetransmitPolicy(base_rto_ms=500.0, max_rto_ms=100.0)
        with pytest.raises(ValueError, match="min_rto_ms"):
            RetransmitPolicy(min_rto_ms=0.0)
        with pytest.raises(ValueError, match="min_rto_ms"):
            RetransmitPolicy(min_rto_ms=9000.0, max_rto_ms=8000.0)

    def test_backoff_and_jitter(self):
        with pytest.raises(ValueError, match="backoff"):
            RetransmitPolicy(backoff=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetransmitPolicy(jitter_ms=-1.0)

    def test_window_and_overload_knobs(self):
        with pytest.raises(ValueError, match="send_window"):
            RetransmitPolicy(send_window=0)
        with pytest.raises(ValueError, match="reorder_window"):
            RetransmitPolicy(reorder_window=0)
        with pytest.raises(ValueError, match="heal_burst"):
            RetransmitPolicy(heal_burst=0)
        with pytest.raises(ValueError, match="breaker_failures"):
            RetransmitPolicy(breaker_failures=-1)
        with pytest.raises(ValueError, match="backpressure_delay_ms"):
            RetransmitPolicy(backpressure_delay_ms=0.0)
        with pytest.raises(ValueError, match="backpressure_limit"):
            RetransmitPolicy(backpressure_limit=0)
        with pytest.raises(ValueError, match="shed_backlog"):
            RetransmitPolicy(shed_backlog=-1)

    def test_defaults_are_valid(self):
        RetransmitPolicy()  # must not raise


class TestAdaptiveRto:
    def test_rtt_samples_tighten_the_timer(self):
        # constant 10 ms hops -> 20 ms data+ack RTT; the estimator must
        # converge well below the 200 ms configured base
        pol = RetransmitPolicy(base_rto_ms=200.0, max_rto_ms=800.0,
                               jitter_ms=5.0, min_rto_ms=10.0)
        sim, net, _ = make_net(policy=pol)
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        for k in range(10):
            net.send(0, 1, k)
        sim.run()
        ch = net.transport.channel(0, 1)
        assert ch.rtt_samples == 10
        assert ch.srtt == pytest.approx(20.0, abs=1.0)
        assert pol.min_rto_ms <= ch.rto < pol.base_rto_ms

    def test_fixed_policy_never_samples(self):
        pol = RetransmitPolicy(base_rto_ms=200.0, max_rto_ms=800.0,
                               jitter_ms=5.0, adaptive=False)
        sim, net, _ = make_net(policy=pol)
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        for k in range(10):
            net.send(0, 1, k)
        sim.run()
        ch = net.transport.channel(0, 1)
        assert ch.srtt is None
        assert ch.rto == pol.base_rto_ms

    def test_karn_excludes_retransmitted_packets(self):
        # under heavy drops every retransmitted seq is ambiguous; Karn's
        # rule keeps those acks out of the estimator
        sim, net, _ = make_net(drop=0.5, seed=11)
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(25):
            net.send(0, 1, k)
        sim.run()
        ch = net.transport.channel(0, 1)
        assert got == list(range(25))
        assert ch.retransmissions > 0
        assert ch.rtt_samples < 25

    def test_spurious_retransmissions_detected(self):
        # no drops: every timer firing is premature by construction
        pol = RetransmitPolicy(base_rto_ms=5.0, max_rto_ms=800.0,
                               jitter_ms=1.0, adaptive=False)
        sim, net, _ = make_net(policy=pol)
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(5):
            net.send(0, 1, k)
        sim.run()
        assert got == list(range(5))
        t = net.transport
        assert t.retransmissions > 0
        assert t.spurious_retransmissions == t.retransmissions


class TestFlowControl:
    def test_send_window_bounds_in_flight(self):
        pol = RetransmitPolicy(base_rto_ms=50.0, max_rto_ms=800.0,
                               jitter_ms=5.0, send_window=4)
        sim, net, _ = make_net(policy=pol)
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(20):
            net.send(0, 1, k)
        ch = net.transport.channel(0, 1)
        assert len(ch.unacked) == 4          # window full
        assert len(ch._backlog) == 16        # rest queued
        assert net.transport.backpressured(0)
        assert net.transport.backlog_of(0) == 16
        sim.run()
        assert got == list(range(20))
        assert ch.unacked_peak <= 4
        assert ch.pending == 0
        assert not net.transport.backpressured(0)

    def test_admission_sheds_over_threshold(self):
        from repro.sim.reliable import OverloadError

        pol = RetransmitPolicy(base_rto_ms=50.0, max_rto_ms=800.0,
                               jitter_ms=5.0, send_window=1, shed_backlog=3)
        sim, net, _ = make_net(
            policy=pol, partitions=(Partition([1], 0.0, math.inf),))
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        for k in range(5):
            net.send(0, 1, k)
        net.transport.check_admission(1)  # other site: clean
        with pytest.raises(OverloadError) as exc:
            net.transport.check_admission(0)
        assert exc.value.site == 0
        assert exc.value.backlog >= 3
        assert net.transport.overload_sheds == 1

    def test_admission_disabled_by_default_policy_zero(self):
        pol = RetransmitPolicy(base_rto_ms=50.0, max_rto_ms=800.0,
                               jitter_ms=5.0, send_window=1, shed_backlog=0)
        sim, net, _ = make_net(
            policy=pol, partitions=(Partition([1], 0.0, math.inf),))
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        for k in range(10):
            net.send(0, 1, k)
        net.transport.check_admission(0)  # 0 disables shedding


class TestReorderBuffer:
    def test_overflow_is_bounded_and_recovered(self):
        # aggressive spikes reorder raw packets; a 2-slot reassembly
        # buffer must overflow (drop + retransmit) yet deliver in order
        pol = RetransmitPolicy(base_rto_ms=50.0, max_rto_ms=800.0,
                               jitter_ms=5.0, reorder_window=2)
        sim, net, inj = make_net(policy=pol, spike=0.6, seed=12,
                                 latency=UniformLatency(1.0, 20.0))
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(40):
            net.send(0, 1, k)
        sim.run()
        assert got == list(range(40))
        assert inj.spikes > 0
        ch = net.transport.channel(0, 1)
        assert ch.reorder_overflows > 0
        assert ch.reorder_peak <= 2
        assert net.transport.reorder_overflows >= ch.reorder_overflows


class TestPausedChannelTimers:
    def test_no_timer_fires_while_paused(self):
        # a severed destination normally burns RTO timers (see
        # test_backoff_caps_at_max_rto); pausing must park them
        sim, net, _ = make_net(partitions=(Partition([1], 0.0, math.inf),))
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        net.send(0, 1, "x")
        net.transport.pause_pair(0, 1)
        sim.run(until=5_000.0)  # 100x the RTO with the timer parked
        ch = net.transport.channel(0, 1)
        assert ch.retransmissions == 0
        assert ch.unacked  # still owed
        net.transport.resume_pair(0, 1, flush=True)
        sim.run(until=10_000.0)
        assert ch.retransmissions > 0  # timers burn again after resume

    def test_send_while_paused_backlogs(self):
        sim, net, _ = make_net()
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        net.transport.pause_pair(0, 1)
        got = []
        net.register(1, lambda s, m: got.append(m))
        for k in range(3):
            net.send(0, 1, k)
        sim.run(until=1_000.0)
        assert got == []
        net.transport.resume_pair(0, 1, flush=True)
        sim.run()
        assert got == [0, 1, 2]


class TestPacedHealFlush:
    def test_heal_flush_is_paced_not_burst(self):
        # 12 packets stuck behind a partition with heal_burst=4: the heal
        # must NOT retransmit everything in the same instant
        pol = RetransmitPolicy(base_rto_ms=5_000.0, max_rto_ms=20_000.0,
                               jitter_ms=0.0, heal_burst=4, send_window=64)
        sim, net, _ = make_net(
            policy=pol, partitions=(Partition([1], 0.0, 500.0),))
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(12):
            net.send(0, 1, k)
        sim.run(until=499.0)
        assert got == []
        # just after the heal + one hop: only the leading burst arrived
        sim.run(until=512.0)
        assert 0 < len(got) < 12
        sim.run()
        assert got == list(range(12))

    def test_burst_smaller_than_heal_burst_flushes_at_once(self):
        pol = RetransmitPolicy(base_rto_ms=5_000.0, max_rto_ms=20_000.0,
                               jitter_ms=0.0, heal_burst=16)
        sim, net, _ = make_net(
            policy=pol, partitions=(Partition([1], 0.0, 500.0),))
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(4):
            net.send(0, 1, k)
        sim.run(until=512.0)
        assert got == list(range(4))  # under the burst: no pacing delay


class TestCircuitBreaker:
    def test_breaker_trips_probes_then_closes(self):
        pol = RetransmitPolicy(base_rto_ms=50.0, max_rto_ms=200.0,
                               jitter_ms=0.0, breaker_failures=2,
                               adaptive=False)
        sim, net, _ = make_net(
            policy=pol, partitions=(Partition([1], 0.0, 2_000.0),))
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(6):
            net.send(0, 1, k)
        sim.run(until=1_900.0)
        ch = net.transport.channel(0, 1)
        assert ch.degraded          # breaker open while severed
        assert ch.breaker_trips >= 1
        assert net.transport.breaker_trips >= 1
        sim.run()
        assert got == list(range(6))
        assert not ch.degraded      # ack progress closed it
        assert net.transport.breaker_closes >= 1

    def test_breaker_disabled_when_zero(self):
        pol = RetransmitPolicy(base_rto_ms=50.0, max_rto_ms=200.0,
                               jitter_ms=0.0, breaker_failures=0)
        sim, net, _ = make_net(
            policy=pol, partitions=(Partition([1], 0.0, 1_000.0),))
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        net.send(0, 1, "x")
        sim.run()
        ch = net.transport.channel(0, 1)
        assert ch.breaker_trips == 0
        assert not ch.degraded


class TestChannelMetricsExport:
    def test_gauges_and_counters_sampled(self):
        from repro.obs.metrics import MetricsRegistry

        sim, net, _ = make_net(drop=0.4, seed=3)
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        for k in range(30):
            net.send(0, 1, k)
        sim.run()
        registry = MetricsRegistry()
        net.transport.sample_channel_metrics(registry)
        fam = registry.get("net_channel_rto_ms")
        assert fam is not None
        labels = [dict(zip(fam.label_names, key)) for key, _ in fam.samples()]
        assert {"src": "0", "dst": "1"} in labels
        retx = registry.get("net_channel_retransmissions_total")
        assert retx is not None
        assert sum(c.value for _, c in retx.samples()) > 0
