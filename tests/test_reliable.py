"""Unit tests for the fault injector and the reliable delivery layer."""

import math

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.faults import (
    ChannelFaults,
    FaultInjector,
    FaultPlan,
    Partition,
)
from repro.sim.network import ConstantLatency, Network, UniformLatency
from repro.sim.reliable import ACK_SIZE_BYTES, RetransmitPolicy

FAST = RetransmitPolicy(base_rto_ms=50.0, max_rto_ms=800.0, jitter_ms=5.0)


def make_net(n=2, drop=0.0, dup=0.0, spike=0.0, partitions=(), seed=0,
             latency=None, collector=None):
    sim = Simulator()
    plan = FaultPlan.uniform(drop_rate=drop, dup_rate=dup, spike_rate=spike,
                             partitions=partitions)
    injector = FaultInjector(plan, rng=np.random.default_rng(seed))
    net = Network(sim, n, latency or ConstantLatency(10.0),
                  rng=np.random.default_rng(1), faults=injector,
                  collector=collector, retransmit=FAST)
    return sim, net, injector


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChannelFaults(drop_rate=1.0)
        with pytest.raises(ValueError):
            ChannelFaults(dup_rate=-0.1)
        with pytest.raises(ValueError):
            ChannelFaults(spike_ms=(100.0, 50.0))

    def test_partition_validated(self):
        with pytest.raises(ValueError):
            Partition([], 0.0, 10.0)
        with pytest.raises(ValueError):
            Partition([0], 10.0, 5.0)

    def test_partition_severs_both_directions_only_in_window(self):
        p = Partition([0], 100.0, 200.0)
        assert not p.severs(0, 1, 50.0)
        assert p.severs(0, 1, 100.0)
        assert p.severs(1, 0, 150.0)
        assert not p.severs(0, 1, 200.0)  # healed
        assert not p.severs(1, 2, 150.0)  # both outside the group

    def test_plan_is_hashable(self):
        plan = FaultPlan.build(
            default=ChannelFaults(drop_rate=0.1),
            channels={(0, 1): ChannelFaults(dup_rate=0.2)},
            partitions=(Partition([0], 0.0, 10.0),),
        )
        hash(plan)  # usable inside frozen SimulationConfig
        assert plan.faults_for(0, 1).dup_rate == 0.2
        assert plan.faults_for(1, 0).drop_rate == 0.1
        assert plan.heal_times() == [10.0]

    def test_injector_deterministic_per_seed(self):
        def decisions(seed):
            inj = FaultInjector(FaultPlan.uniform(drop_rate=0.4, dup_rate=0.3),
                                rng=np.random.default_rng(seed))
            return [inj.decide(0, 1, 0.0) for _ in range(200)]

        assert decisions(5) == decisions(5)
        assert decisions(5) != decisions(6)

    def test_quiet_plan_draws_nothing(self):
        inj = FaultInjector(FaultPlan())
        before = inj.rng.bit_generator.state["state"]["state"]
        for _ in range(50):
            d = inj.decide(0, 1, 0.0)
            assert not d.drop and d.duplicates == 0 and d.extra_delay_ms == 0.0
        assert inj.rng.bit_generator.state["state"]["state"] == before

    def test_dynamic_partitions(self):
        inj = FaultInjector(FaultPlan())
        assert not inj.severed(0, 1, 5.0)
        inj.start_partition({1}, 5.0)
        assert inj.severed(0, 1, 5.0) and inj.severed(1, 0, 6.0)
        assert inj.unhealed_partitions(6.0) == [frozenset({1})]
        healed = inj.heal_partitions(9.0)
        assert healed == [frozenset({1})]
        assert not inj.severed(0, 1, 9.0)
        assert inj.unhealed_partitions(9.0) == []


class TestReliableDelivery:
    def test_lossless_channel_delivers_in_order(self):
        sim, net, _ = make_net()
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(10):
            net.send(0, 1, k)
        sim.run()
        assert got == list(range(10))

    def test_drops_recovered_exactly_once(self):
        sim, net, inj = make_net(drop=0.4, seed=3)
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(30):
            net.send(0, 1, k)
        sim.run()
        assert got == list(range(30))
        assert inj.drops > 0  # the chaos was real
        assert net.transport.retransmissions > 0
        assert net.transport.unacked_count() == 0

    def test_duplicates_suppressed(self):
        sim, net, inj = make_net(dup=0.5, seed=4)
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(20):
            net.send(0, 1, k)
        sim.run()
        assert got == list(range(20))
        assert inj.duplicates > 0
        assert net.transport.duplicate_drops > 0

    def test_latency_spikes_cannot_reorder_above_transport(self):
        # spikes reorder raw packets (no FIFO clamp on the chaos path);
        # the reassembly buffer must hide that from the application
        sim, net, inj = make_net(spike=0.5, seed=5,
                                 latency=UniformLatency(1.0, 20.0))
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(40):
            net.send(0, 1, k)
        sim.run()
        assert got == list(range(40))
        assert inj.spikes > 0

    def test_partition_blocks_then_heals(self):
        sim, net, inj = make_net(partitions=(Partition([1], 0.0, 500.0),))
        got = []
        net.register(1, lambda s, m: got.append(m))
        net.register(0, lambda s, m: None)
        for k in range(5):
            net.send(0, 1, k)
        sim.run(until=499.0)
        assert got == []  # everything severed
        assert inj.partition_drops > 0
        sim.run()
        assert got == list(range(5))  # heal triggers eager retransmission

    def test_recovery_latency_recorded_per_site(self):
        from repro.metrics.collector import MetricsCollector

        col = MetricsCollector()
        sim, net, _ = make_net(partitions=(Partition([1], 0.0, 300.0),),
                               collector=col)
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        for k in range(4):
            net.send(0, 1, k)
        sim.run()
        assert col.recovery_latency.count == 1
        assert 1 in col.recovery_by_site
        # backlog drained one constant-latency hop after the heal
        assert col.recovery_latency.mean == pytest.approx(10.0 + 10.0, abs=5.0)

    def test_ack_overhead_accounted(self):
        from repro.metrics.collector import MetricsCollector

        col = MetricsCollector()
        sim, net, _ = make_net(collector=col)
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        for k in range(7):
            net.send(0, 1, k)
        sim.run()
        assert col.acks_sent == 7
        assert col.ack_bytes == 7 * ACK_SIZE_BYTES

    def test_backoff_caps_at_max_rto(self):
        sim, net, _ = make_net(partitions=(Partition([1], 0.0, math.inf),))
        net.register(1, lambda s, m: None)
        net.register(0, lambda s, m: None)
        net.send(0, 1, "x")
        sim.run(until=10_000.0)
        ch = net.transport.channel(0, 1)
        assert ch.rto == FAST.max_rto_ms
        assert ch.unacked  # still trying, never delivered

    def test_bidirectional_traffic(self):
        sim, net, _ = make_net(drop=0.3, seed=9)
        got = {0: [], 1: []}
        net.register(0, lambda s, m: got[0].append(m))
        net.register(1, lambda s, m: got[1].append(m))
        for k in range(15):
            net.send(0, 1, ("a", k))
            net.send(1, 0, ("b", k))
        sim.run()
        assert got[1] == [("a", k) for k in range(15)]
        assert got[0] == [("b", k) for k in range(15)]
