"""Tests for the session-guarantee checkers.

Each guarantee is tested in both directions: real protocol executions
must satisfy it, and a hand-constructed counterexample must be flagged.
"""

import pytest

from repro import AdversarialLatency, SimulationConfig, run_simulation
from repro.memory.store import WriteId
from repro.verify.history import HistoryRecorder
from repro.verify.sessions import (
    check_all_session_guarantees,
    check_monotonic_reads,
    check_monotonic_writes,
    check_read_your_writes,
    check_writes_follow_reads,
)


def w(h, t, site, var, value, clock):
    h.record_write_op(time=t, site=site, var=var, value=value,
                      write_id=WriteId(site, clock))
    return (site, clock)


def r(h, t, site, var, value, wid):
    h.record_read_op(time=t, site=site, var=var, value=value,
                     write_id=WriteId(*wid) if wid else None)


def ap(h, t, site, var, wid):
    h.record_apply(time=t, site=site, var=var, write_id=WriteId(*wid))


class TestReadYourWrites:
    def test_reading_own_write_ok(self):
        h = HistoryRecorder()
        wid = w(h, 1, 0, 0, "a", 1)
        r(h, 2, 0, 0, "a", wid)
        assert check_read_your_writes(h) == []

    def test_reading_newer_value_ok(self):
        h = HistoryRecorder()
        own = w(h, 1, 0, 0, "a", 1)
        r(h, 2, 1, 0, "a", own)
        newer = w(h, 3, 1, 0, "b", 1)   # causally after own (via the read)
        r(h, 4, 0, 0, "b", newer)
        assert check_read_your_writes(h) == []

    def test_reading_concurrent_value_ok(self):
        # causal memory permits returning a write concurrent with one's own
        h = HistoryRecorder()
        w(h, 1, 0, 0, "a", 1)
        other = w(h, 1, 1, 0, "b", 1)   # concurrent with site 0's write
        r(h, 2, 0, 0, "b", other)
        assert check_read_your_writes(h) == []

    def test_bottom_after_own_write_flagged(self):
        h = HistoryRecorder()
        w(h, 1, 0, 0, "a", 1)
        r(h, 2, 0, 0, None, None)
        assert len(check_read_your_writes(h)) == 1

    def test_reading_causal_ancestor_of_own_write_flagged(self):
        h = HistoryRecorder()
        old = w(h, 1, 1, 0, "old", 1)
        r(h, 2, 0, 0, "old", old)       # site 0 reads it ...
        w(h, 3, 0, 0, "new", 1)         # ... overwrites it ...
        r(h, 4, 0, 0, "old", old)       # ... then reads the ancestor again
        assert len(check_read_your_writes(h)) == 1


class TestMonotonicReads:
    def test_forward_progress_ok(self):
        h = HistoryRecorder()
        w1 = w(h, 1, 0, 0, "a", 1)
        w2 = w(h, 2, 0, 0, "b", 2)
        r(h, 3, 1, 0, "a", w1)
        r(h, 4, 1, 0, "b", w2)
        assert check_monotonic_reads(h) == []

    def test_regression_flagged(self):
        h = HistoryRecorder()
        w1 = w(h, 1, 0, 0, "a", 1)
        w2 = w(h, 2, 0, 0, "b", 2)
        r(h, 3, 1, 0, "b", w2)
        r(h, 4, 1, 0, "a", w1)   # regressed to a causal ancestor
        assert len(check_monotonic_reads(h)) == 1

    def test_bottom_after_value_flagged(self):
        h = HistoryRecorder()
        w1 = w(h, 1, 0, 0, "a", 1)
        r(h, 2, 1, 0, "a", w1)
        r(h, 3, 1, 0, None, None)
        assert len(check_monotonic_reads(h)) == 1

    def test_switch_between_concurrent_values_ok(self):
        h = HistoryRecorder()
        wa = w(h, 1, 0, 0, "a", 1)
        wb = w(h, 1, 1, 0, "b", 1)   # concurrent
        r(h, 2, 2, 0, "a", wa)
        r(h, 3, 2, 0, "b", wb)       # moving across concurrents is legal
        assert check_monotonic_reads(h) == []


class TestMonotonicWrites:
    def test_in_order_applies_ok(self):
        h = HistoryRecorder()
        w(h, 1, 0, 0, "a", 1)
        w(h, 2, 0, 1, "b", 2)
        ap(h, 3, 1, 0, (0, 1))
        ap(h, 4, 1, 1, (0, 2))
        assert check_monotonic_writes(h) == []

    def test_out_of_order_applies_flagged(self):
        h = HistoryRecorder()
        w(h, 1, 0, 0, "a", 1)
        w(h, 2, 0, 1, "b", 2)
        ap(h, 3, 1, 1, (0, 2))
        ap(h, 4, 1, 0, (0, 1))
        assert len(check_monotonic_writes(h)) == 1


class TestWritesFollowReads:
    def test_ordered_applies_ok(self):
        h = HistoryRecorder()
        source = w(h, 1, 0, 0, "a", 1)
        r(h, 2, 1, 0, "a", source)
        follow = w(h, 3, 1, 1, "b", 1)
        for site in (2, 3):
            ap(h, 4, site, 0, source)
            ap(h, 5, site, 1, follow)
        assert check_writes_follow_reads(h) == []

    def test_inverted_applies_flagged(self):
        h = HistoryRecorder()
        source = w(h, 1, 0, 0, "a", 1)
        r(h, 2, 1, 0, "a", source)
        follow = w(h, 3, 1, 1, "b", 1)
        ap(h, 4, 2, 1, follow)    # successor applied first
        ap(h, 5, 2, 0, source)
        assert len(check_writes_follow_reads(h)) == 1


class TestProtocolsSatisfyAllGuarantees:
    @pytest.mark.parametrize("protocol",
                             ["full-track", "opt-track", "opt-track-crp", "optp"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_real_runs_pass_everything(self, protocol, seed):
        cfg = SimulationConfig(
            protocol=protocol, n_sites=6, n_vars=8, write_rate=0.5,
            ops_per_process=35, seed=seed, latency=AdversarialLatency(),
            record_history=True,
        )
        result = run_simulation(cfg)
        report = check_all_session_guarantees(result.history, result.placement)
        for guarantee, violations in report.items():
            assert violations == [], (protocol, guarantee, violations[:3])
