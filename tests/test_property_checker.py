"""Property tests cross-validating the checker and activation predicates
against brute-force reference implementations."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.activation import (
    full_track_sm_ready,
    opt_track_entries_ready,
    optp_sm_ready,
)
from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import PiggybackEntry
from repro.memory.store import WriteId
from repro.verify.causal_checker import check_causal_consistency
from repro.verify.graph import causality_graph, read_node, write_node
from repro.verify.history import HistoryRecorder


# ----------------------------------------------------------------------
# random (possibly inconsistent) histories
# ----------------------------------------------------------------------
@st.composite
def histories(draw):
    """A syntactically valid history: writes first (so rf targets exist),
    then reads referencing arbitrary writes — consistency NOT guaranteed,
    which is the point: the checker must agree with brute force on both
    clean and violating histories."""
    n_sites = draw(st.integers(1, 4))
    n_vars = draw(st.integers(1, 3))
    h = HistoryRecorder()
    writes: list[tuple[int, int, int]] = []  # (site, clock, var)
    clocks = [0] * n_sites
    t = 0.0
    for _ in range(draw(st.integers(1, 10))):
        site = draw(st.integers(0, n_sites - 1))
        var = draw(st.integers(0, n_vars - 1))
        t += 1.0
        clocks[site] += 1
        h.record_write_op(time=t, site=site, var=var,
                          value=f"v{site}.{clocks[site]}",
                          write_id=WriteId(site, clocks[site]))
        writes.append((site, clocks[site], var))
    for _ in range(draw(st.integers(0, 10))):
        site = draw(st.integers(0, n_sites - 1))
        t += 1.0
        if writes and draw(st.booleans()):
            wsite, wclock, wvar = writes[draw(st.integers(0, len(writes) - 1))]
            h.record_read_op(time=t, site=site, var=wvar,
                             value=f"v{wsite}.{wclock}",
                             write_id=WriteId(wsite, wclock))
        else:
            var = draw(st.integers(0, n_vars - 1))
            h.record_read_op(time=t, site=site, var=var, value=None,
                             write_id=None)
    return h


def brute_force_stale_reads(history: HistoryRecorder) -> int:
    """O(V^3) reference: count stale reads via full transitive closure."""
    g = causality_graph(history)
    if not nx.is_directed_acyclic_graph(g):
        return -1  # cycle marker
    closure = nx.transitive_closure_dag(g)
    count = 0
    writes_by_var: dict[int, list] = {}
    for node, data in g.nodes(data=True):
        if data["kind"] == "w":
            writes_by_var.setdefault(data["var"], []).append(node)
    for node, data in g.nodes(data=True):
        if data["kind"] != "r":
            continue
        var = data["var"]
        if data["rf"] is None:
            count += sum(
                1 for w2 in writes_by_var.get(var, ())
                if closure.has_edge(w2, node)
            )
            continue
        w = write_node(*data["rf"])
        for w2 in writes_by_var.get(var, ()):
            if w2 == w:
                continue
            if closure.has_edge(w2, node) and closure.has_edge(w, w2):
                count += 1
    return count


class TestCheckerAgainstBruteForce:
    @given(history=histories())
    @settings(max_examples=150, deadline=None)
    def test_stale_read_counts_agree(self, history):
        report = check_causal_consistency(history)
        expected = brute_force_stale_reads(history)
        if expected == -1:
            assert report.violations
            assert report.violations[0].kind == "cyclic-causality"
        else:
            found = sum(1 for v in report.violations
                        if v.kind in ("stale-read", "stale-bottom-read"))
            assert found == expected


# ----------------------------------------------------------------------
# activation predicates vs naive definitions
# ----------------------------------------------------------------------
class TestPredicatesAgainstNaive:
    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_full_track_predicate(self, data):
        n = data.draw(st.integers(2, 5))
        rows = st.lists(st.lists(st.integers(0, 4), min_size=n, max_size=n),
                        min_size=n, max_size=n)
        m = MatrixClock(n, np.array(data.draw(rows)))
        sender = data.draw(st.integers(0, n - 1))
        site = data.draw(st.integers(0, n - 1))
        # make the message self-consistent: it counts itself
        if m[sender, site] == 0:
            m.increment(sender, [site])
        applied = np.array(data.draw(
            st.lists(st.integers(0, 5), min_size=n, max_size=n)), dtype=np.int64)

        naive = all(
            applied[j] >= m[j, site] - (1 if j == sender else 0)
            for j in range(n)
        )
        assert full_track_sm_ready(m, sender, site, applied) == naive

    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_opt_track_predicate(self, data):
        n = 5
        entries = [
            PiggybackEntry(
                data.draw(st.integers(0, n - 1)),
                data.draw(st.integers(1, 6)),
                frozenset(data.draw(st.frozensets(st.integers(0, n - 1),
                                                  max_size=3))),
            )
            for _ in range(data.draw(st.integers(0, 6)))
        ]
        site = data.draw(st.integers(0, n - 1))
        applied = np.array(data.draw(
            st.lists(st.integers(0, 6), min_size=n, max_size=n)), dtype=np.int64)

        naive = all(
            applied[e.writer] >= e.clock
            for e in entries if site in e.dests
        )
        assert opt_track_entries_ready(entries, site, applied) == naive

    @given(data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_optp_predicate(self, data):
        n = data.draw(st.integers(2, 5))
        writer = data.draw(st.integers(0, n - 1))
        vec = VectorClock(n, data.draw(
            st.lists(st.integers(0, 5), min_size=n, max_size=n)))
        if vec[writer] == 0:
            vec.increment(writer)
        applied = np.array(data.draw(
            st.lists(st.integers(0, 5), min_size=n, max_size=n)), dtype=np.int64)

        naive = applied[writer] == vec[writer] - 1 and all(
            applied[j] >= vec[j] for j in range(n) if j != writer
        )
        assert optp_sm_ready(writer, vec, applied) == naive
