"""Truth-table tests for the activation predicates (A_OPT variants)."""

import numpy as np
import pytest

from repro.core.activation import (
    crp_sm_ready,
    full_track_rm_ready,
    full_track_sm_ready,
    opt_track_entries_ready,
    optp_sm_ready,
)
from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import PiggybackEntry


def entry(j, c, *dests):
    return PiggybackEntry(j, c, frozenset(dests))


class TestFullTrackSM:
    def test_first_message_from_sender_applies_immediately(self):
        m = MatrixClock(3)
        m.increment(0, [1, 2])  # the message itself
        assert full_track_sm_ready(m, sender=0, site=1, applied_counts=np.zeros(3, np.int64))

    def test_waits_for_earlier_send_from_same_sender(self):
        m = MatrixClock(3)
        m.increment(0, [1])  # earlier write by 0 destined to 1
        m.increment(0, [1])  # the message itself
        applied = np.zeros(3, np.int64)
        assert not full_track_sm_ready(m, 0, 1, applied)
        applied[0] = 1
        assert full_track_sm_ready(m, 0, 1, applied)

    def test_waits_for_causally_earlier_write_from_third_party(self):
        m = MatrixClock(3)
        m.increment(2, [1])  # write by 2 to site 1, causally before
        m.increment(0, [1])  # the message itself
        applied = np.zeros(3, np.int64)
        assert not full_track_sm_ready(m, 0, 1, applied)
        applied[2] = 1
        assert full_track_sm_ready(m, 0, 1, applied)

    def test_ignores_writes_destined_elsewhere(self):
        m = MatrixClock(3)
        m.increment(2, [0])  # destined to site 0, not to receiver 1
        m.increment(0, [1])
        assert full_track_sm_ready(m, 0, 1, np.zeros(3, np.int64))


class TestFullTrackRM:
    def test_ready_when_column_covered(self):
        m = MatrixClock(3)
        m.increment(2, [1])
        applied = np.zeros(3, np.int64)
        assert not full_track_rm_ready(m, 1, applied)
        applied[2] = 1
        assert full_track_rm_ready(m, 1, applied)

    def test_empty_matrix_is_ready(self):
        assert full_track_rm_ready(MatrixClock(3), 1, np.zeros(3, np.int64))


class TestOptTrack:
    def test_empty_log_ready(self):
        assert opt_track_entries_ready([], 1, np.zeros(3, np.int64))

    def test_entry_naming_site_gates(self):
        applied = np.zeros(3, np.int64)
        entries = [entry(0, 2, 1)]
        assert not opt_track_entries_ready(entries, 1, applied)
        applied[0] = 2
        assert opt_track_entries_ready(entries, 1, applied)

    def test_higher_applied_clock_satisfies(self):
        applied = np.array([5, 0, 0], np.int64)
        assert opt_track_entries_ready([entry(0, 3, 1)], 1, applied)

    def test_entry_naming_other_sites_ignored(self):
        assert opt_track_entries_ready([entry(0, 9, 2)], 1, np.zeros(3, np.int64))

    def test_empty_dest_marker_ignored(self):
        assert opt_track_entries_ready([entry(0, 9)], 1, np.zeros(3, np.int64))

    def test_all_entries_must_pass(self):
        applied = np.array([5, 0, 0], np.int64)
        entries = [entry(0, 3, 1), entry(2, 1, 1)]
        assert not opt_track_entries_ready(entries, 1, applied)
        applied[2] = 1
        assert opt_track_entries_ready(entries, 1, applied)


class TestCRP:
    def test_fifo_gap_blocks(self):
        applied = np.zeros(2, np.int64)
        assert crp_sm_ready(0, 1, [], applied)
        assert not crp_sm_ready(0, 2, [], applied)  # clock 1 missing

    def test_already_applied_blocks(self):
        applied = np.array([3, 0], np.int64)
        assert not crp_sm_ready(0, 3, [], applied)  # duplicate would regress

    def test_dependencies_must_be_applied(self):
        applied = np.array([0, 0], np.int64)
        assert not crp_sm_ready(0, 1, [(1, 2)], applied)
        applied[1] = 2
        assert crp_sm_ready(0, 1, [(1, 2)], applied)


class TestOptP:
    def test_next_in_fifo_with_no_deps(self):
        v = VectorClock(3, [1, 0, 0])
        assert optp_sm_ready(0, v, np.zeros(3, np.int64))

    def test_fifo_gap_blocks(self):
        v = VectorClock(3, [2, 0, 0])
        assert not optp_sm_ready(0, v, np.zeros(3, np.int64))

    def test_third_party_dependency_blocks(self):
        v = VectorClock(3, [1, 0, 2])
        applied = np.zeros(3, np.int64)
        assert not optp_sm_ready(0, v, applied)
        applied[2] = 2
        assert optp_sm_ready(0, v, applied)

    def test_applied_beyond_dependency_ok(self):
        v = VectorClock(3, [1, 0, 2])
        applied = np.array([0, 4, 5], np.int64)
        assert optp_sm_ready(0, v, applied)
