"""Regenerate the Chrome trace-export golden file.

Run after an *intentional* change to ``repro.obs.sinks.to_chrome``::

    PYTHONPATH=src python tests/golden/regen_trace_chrome.py

The config here must stay in lockstep with ``golden_cfg`` in
``tests/test_obs.py`` — the test replays it and compares the export
against ``trace_chrome_small.json`` structurally.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.experiments.runner import SimulationConfig, run_simulation  # noqa: E402
from repro.obs import Tracer, to_chrome  # noqa: E402
from repro.sim.network import ConstantLatency  # noqa: E402


def main() -> int:
    cfg = SimulationConfig(
        protocol="opt-track", n_sites=3, n_vars=6, ops_per_process=8,
        latency=ConstantLatency(5.0), seed=1,
    )
    tracer = Tracer()
    run_simulation(cfg, tracer=tracer)
    out = Path(__file__).parent / "trace_chrome_small.json"
    out.write_text(json.dumps(to_chrome(tracer), sort_keys=True, indent=1)
                   + "\n")
    print(f"wrote {out} "
          f"({len(to_chrome(tracer)['traceEvents'])} trace events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
