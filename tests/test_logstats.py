"""Tests for the Opt-Track log introspection module and trace CLI."""

import json

import pytest

from repro import SimulationConfig, run_simulation
from repro.analysis.logstats import LogSnapshot, format_log_report, snapshot_logs
from repro.cli import main


def run_opt_track(**kw):
    kw.setdefault("ops_per_process", 40)
    kw.setdefault("n_sites", 6)
    kw.setdefault("seed", 0)
    return run_simulation(SimulationConfig(protocol="opt-track", **kw))


class TestSnapshot:
    def test_counts_match_protocol_state(self):
        result = run_opt_track()
        snap = snapshot_logs(result.protocols)
        assert snap.n_sites == 6
        assert snap.entries_per_site == tuple(len(p.log) for p in result.protocols)
        assert snap.max_entries >= snap.mean_entries

    def test_histogram_consistent(self):
        result = run_opt_track()
        snap = snapshot_logs(result.protocols)
        assert sum(snap.dest_list_histogram.values()) == sum(snap.entries_per_site)
        assert sum(snap.entries_per_writer.values()) == sum(snap.entries_per_site)

    def test_tombstones_accumulate(self):
        result = run_opt_track(write_rate=0.8)
        snap = snapshot_logs(result.protocols)
        assert sum(snap.tombstones_per_site) > 0

    def test_empty_marker_fraction_in_range(self):
        snap = snapshot_logs(run_opt_track().protocols)
        assert 0.0 <= snap.empty_marker_fraction <= 1.0

    def test_rejects_logless_protocols(self):
        result = run_simulation(SimulationConfig(
            protocol="optp", n_sites=3, ops_per_process=10, seed=0))
        with pytest.raises(TypeError, match="inspectable log"):
            snapshot_logs(result.protocols)

    def test_report_formatting(self):
        snap = snapshot_logs(run_opt_track().protocols)
        text = format_log_report(snap)
        assert "entries/site" in text
        assert "tombstones" in text
        assert "∅-markers" in text

    def test_empty_snapshot(self):
        snap = LogSnapshot(
            n_sites=0, entries_per_site=(), tombstones_per_site=(),
            dest_list_histogram={}, entries_per_writer={}, staleness=(),
        )
        assert snap.mean_entries == 0.0
        assert snap.mean_dests == 0.0
        assert "(empty)" in format_log_report(snap)


class TestTraceCli:
    def test_trace_then_verify_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "t"
        rc = main(["trace", "run", str(out), "-n", "4", "--ops", "25"])
        assert rc == 0
        assert (out / "workload.json").exists()
        assert (out / "history.jsonl").exists()
        config = json.loads((out / "config.json").read_text())
        assert config["protocol"] == "opt-track"
        capsys.readouterr()
        rc = main(["verify-trace", str(out)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_trace_logstats_printed_for_opt_track(self, tmp_path, capsys):
        rc = main(["trace", "run", str(tmp_path / "t"), "--ops", "20"])
        assert rc == 0
        assert "log structure" in capsys.readouterr().out

    def test_verify_trace_flags_corruption(self, tmp_path, capsys):
        out = tmp_path / "t"
        main(["trace", "run", str(out), "-n", "4", "--ops", "25", "--protocol", "optp"])
        capsys.readouterr()
        # corrupt the history: make the first read return a future write
        lines = (out / "history.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        writes = [e for e in events if e["kind"] == "write_op"]
        reads = [e for e in events if e["kind"] == "read_op"]
        assert writes and reads
        # pick a write by some site and force an early read of that var
        # at the same site to have "returned" a later overwrite
        target = writes[-1]
        victim = next(e for e in events if e["kind"] == "read_op")
        victim["var"] = target["var"]
        victim["write_id"] = target["write_id"]
        victim["value"] = target["value"]
        # then append a regression read of the FIRST write to that var
        first = next(w for w in writes if w["var"] == target["var"])
        if first["write_id"] != target["write_id"]:
            regression = dict(victim)
            regression["write_id"] = first["write_id"]
            events.append(regression)
            (out / "history.jsonl").write_text(
                "\n".join(json.dumps(e) for e in events) + "\n"
            )
            rc = main(["verify-trace", str(out)])
            if rc == 1:
                assert "VIOLATED" in capsys.readouterr().out
