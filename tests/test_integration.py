"""Integration tests: full simulations, cross-checked three ways.

1. Every protocol, under several latency regimes and seeds, produces a
   history the causal-consistency checker accepts, finishes every
   schedule, and drains every buffer.
2. Measured message counts match the closed-form expectations exactly
   (counts are a deterministic function of the schedule and placement).
3. Metamorphic relations across protocols hold: same schedule =>
   identical message counts for the two partial protocols, identical
   counts for the two full protocols, Opt-Track at p=n never fetches.
"""

import math

import pytest

from repro import (
    AdversarialLatency,
    ConstantLatency,
    LogNormalLatency,
    SimulationConfig,
    UniformLatency,
    check_causal_consistency,
    run_simulation,
)
from repro.experiments.sweep import paired_runs
from repro.metrics.collector import MessageKind
from repro.workload.generator import generate_workload

ALL_PROTOCOLS = ["full-track", "opt-track", "opt-track-crp", "optp"]


def exact_expected_counts(workload, placement):
    """Exact SM/FM/RM counts implied by a schedule and a placement."""
    sm = fm = 0
    for sched in workload.schedules:
        for _, op in sched.items:
            if op.is_write:
                reps = placement.replicas(op.var)
                sm += len(reps) - (1 if sched.site in reps else 0)
            elif not placement.is_replicated_at(op.var, sched.site):
                fm += 1
    return sm, fm, fm  # one RM per FM


class TestCausalConsistencyAcrossTheBoard:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    @pytest.mark.parametrize("latency", [
        ConstantLatency(20.0),
        UniformLatency(5.0, 200.0),
        AdversarialLatency(),
        LogNormalLatency(median_ms=50.0, sigma=1.0),
    ], ids=["constant", "uniform", "adversarial", "lognormal"])
    def test_checker_green(self, protocol, latency):
        cfg = SimulationConfig(
            protocol=protocol, n_sites=6, n_vars=10, write_rate=0.4,
            ops_per_process=40, seed=11, latency=latency, record_history=True,
        )
        result = run_simulation(cfg)
        report = check_causal_consistency(result.history, result.placement)
        report.raise_if_violated()
        assert all(p.pending_count == 0 for p in result.protocols)

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    @pytest.mark.parametrize("seed", range(3))
    def test_checker_green_across_seeds(self, protocol, seed):
        cfg = SimulationConfig(
            protocol=protocol, n_sites=5, n_vars=8, write_rate=0.6,
            ops_per_process=30, seed=seed, latency=AdversarialLatency(),
            record_history=True,
        )
        result = run_simulation(cfg)
        check_causal_consistency(result.history, result.placement).raise_if_violated()

    @pytest.mark.parametrize("protocol", ["full-track", "opt-track"])
    def test_checker_green_random_placement(self, protocol):
        cfg = SimulationConfig(
            protocol=protocol, n_sites=7, n_vars=12, write_rate=0.5,
            ops_per_process=30, seed=5, placement="random",
            latency=AdversarialLatency(), record_history=True,
        )
        result = run_simulation(cfg)
        check_causal_consistency(result.history, result.placement).raise_if_violated()

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_extreme_write_rates(self, protocol):
        for wr in (0.0, 1.0):
            cfg = SimulationConfig(
                protocol=protocol, n_sites=4, n_vars=6, write_rate=wr,
                ops_per_process=25, seed=3, record_history=True,
            )
            result = run_simulation(cfg)
            check_causal_consistency(result.history, result.placement).raise_if_violated()

    def test_single_site_degenerate(self):
        for protocol in ALL_PROTOCOLS:
            cfg = SimulationConfig(protocol=protocol, n_sites=1, n_vars=4,
                                   write_rate=0.5, ops_per_process=20, seed=0,
                                   record_history=True)
            result = run_simulation(cfg)
            assert result.collector.lifetime_message_count == 0
            check_causal_consistency(result.history, result.placement).raise_if_violated()


class TestMessageCountsExact:
    @pytest.mark.parametrize("protocol", ["full-track", "opt-track"])
    def test_partial_counts_match_schedule_exactly(self, protocol):
        cfg = SimulationConfig(
            protocol=protocol, n_sites=8, n_vars=16, write_rate=0.5,
            ops_per_process=50, seed=7, warmup_fraction=0.0,
        )
        result = run_simulation(cfg)
        sm, fm, rm = exact_expected_counts(result.workload, result.placement)
        col = result.collector
        assert col.tally(MessageKind.SM).count == sm
        assert col.tally(MessageKind.FM).count == fm
        assert col.tally(MessageKind.RM).count == rm

    @pytest.mark.parametrize("protocol", ["opt-track-crp", "optp"])
    def test_full_replication_counts(self, protocol):
        cfg = SimulationConfig(
            protocol=protocol, n_sites=6, n_vars=10, write_rate=0.3,
            ops_per_process=40, seed=2, warmup_fraction=0.0,
        )
        result = run_simulation(cfg)
        writes = result.workload.total_writes
        col = result.collector
        assert col.tally(MessageKind.SM).count == writes * 5  # (n-1) per write
        assert col.tally(MessageKind.FM).count == 0
        assert col.tally(MessageKind.RM).count == 0

    def test_warmup_excludes_messages(self):
        base = dict(protocol="optp", n_sites=4, n_vars=8, write_rate=0.5,
                    ops_per_process=40, seed=1)
        full = run_simulation(SimulationConfig(warmup_fraction=0.0, **base))
        trimmed = run_simulation(SimulationConfig(warmup_fraction=0.15, **base))
        assert trimmed.collector.total_message_count < full.collector.total_message_count
        # lifetime counts are unaffected by the measurement window
        assert (trimmed.collector.lifetime_message_count
                == full.collector.lifetime_message_count)

    def test_counts_match_analytic_expectation(self):
        # statistical check against the closed-form count model
        from repro.analysis.model import partial_replication_message_count

        cfg = SimulationConfig(protocol="opt-track", n_sites=10, n_vars=100,
                               write_rate=0.5, ops_per_process=200, seed=0,
                               warmup_fraction=0.0)
        result = run_simulation(cfg)
        w = result.workload.total_writes
        r = result.workload.total_reads
        expected = partial_replication_message_count(10, 3, w, r)
        assert result.collector.total_message_count == pytest.approx(expected, rel=0.05)


class TestMetamorphicRelations:
    def test_partial_protocols_same_message_pattern(self):
        # Full-Track and Opt-Track differ only in metadata: same schedule
        # must produce the same number of each message kind
        runs = paired_runs(("full-track", "opt-track"), 6, 0.5,
                           ops_per_process=40, seed=4)
        ft, ot = runs["full-track"].collector, runs["opt-track"].collector
        for kind in MessageKind:
            assert ft.tally(kind).count == ot.tally(kind).count

    def test_full_protocols_same_message_pattern(self):
        runs = paired_runs(("opt-track-crp", "optp"), 6, 0.5,
                           ops_per_process=40, seed=4)
        a, b = runs["opt-track-crp"].collector, runs["optp"].collector
        assert a.tally(MessageKind.SM).count == b.tally(MessageKind.SM).count

    def test_opt_track_metadata_never_larger_total(self):
        runs = paired_runs(("full-track", "opt-track"), 10, 0.5,
                           ops_per_process=60, seed=9)
        assert (runs["opt-track"].collector.total_metadata_bytes
                < runs["full-track"].collector.total_metadata_bytes)

    def test_opt_track_at_full_replication_never_fetches(self):
        cfg = SimulationConfig(
            protocol="opt-track", n_sites=5, n_vars=10, replication_factor=5,
            write_rate=0.4, ops_per_process=30, seed=6, record_history=True,
        )
        result = run_simulation(cfg)
        assert result.collector.tally(MessageKind.FM).lifetime_count == 0
        check_causal_consistency(result.history, result.placement).raise_if_violated()

    def test_same_schedule_same_values_read(self):
        # with constant latency the two full-replication protocols must
        # deliver identical apply orders, hence identical read results
        results = {}
        for protocol in ("opt-track-crp", "optp"):
            cfg = SimulationConfig(
                protocol=protocol, n_sites=4, n_vars=8, write_rate=0.5,
                ops_per_process=30, seed=8, latency=ConstantLatency(25.0),
                record_history=True,
            )
            wl = generate_workload(4, n_vars=8, write_rate=0.5,
                                   ops_per_process=30, seed=8)
            result = run_simulation(cfg, workload=wl)
            results[protocol] = [
                (e.site, e.var, e.value) for e in result.history.reads()
            ]
        assert results["opt-track-crp"] == results["optp"]


class TestRunnerBehavior:
    def test_determinism_end_to_end(self):
        cfg = SimulationConfig(protocol="opt-track", n_sites=5, n_vars=10,
                               write_rate=0.5, ops_per_process=30, seed=13)
        a = run_simulation(cfg).summary()
        b = run_simulation(cfg).summary()
        assert a == b

    def test_config_validation(self):
        with pytest.raises(KeyError):
            SimulationConfig(protocol="nope", n_sites=3)
        with pytest.raises(ValueError):
            SimulationConfig(protocol="optp", n_sites=0)
        with pytest.raises(ValueError):
            SimulationConfig(protocol="optp", n_sites=3, warmup_fraction=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(protocol="optp", n_sites=3, placement="bogus")

    def test_full_protocol_rejects_partial_factor(self):
        cfg = SimulationConfig(protocol="optp", n_sites=4, replication_factor=2,
                               ops_per_process=5)
        with pytest.raises(ValueError, match="full replication"):
            run_simulation(cfg)

    def test_resolved_replication_factor(self):
        assert SimulationConfig(protocol="optp", n_sites=8).resolved_replication_factor() == 8
        assert SimulationConfig(protocol="opt-track", n_sites=10).resolved_replication_factor() == 3
        assert SimulationConfig(protocol="opt-track", n_sites=10,
                                replication_factor=5).resolved_replication_factor() == 5

    def test_workload_site_mismatch_rejected(self):
        wl = generate_workload(3, ops_per_process=5)
        cfg = SimulationConfig(protocol="optp", n_sites=4, ops_per_process=5)
        with pytest.raises(ValueError, match="sites"):
            run_simulation(cfg, workload=wl)

    def test_with_protocol_helper(self):
        cfg = SimulationConfig(protocol="optp", n_sites=4)
        assert cfg.with_protocol("opt-track-crp").protocol == "opt-track-crp"
        assert cfg.with_protocol("opt-track-crp").n_sites == 4

    def test_event_budget_guard(self):
        cfg = SimulationConfig(protocol="optp", n_sites=3, ops_per_process=50,
                               max_events=10)
        with pytest.raises(Exception, match="budget"):
            run_simulation(cfg)
