"""Unit tests for the Opt-Track KS-style log and the CRP tuple log."""

import pytest

from repro.core.log import OptTrackLog, PiggybackEntry, TupleLog


def entry(j, c, *dests):
    return PiggybackEntry(j, c, frozenset(dests))


class TestInsertAndMergeRules:
    def test_insert_new_record(self):
        log = OptTrackLog()
        log.insert(0, 1, {1, 2})
        assert log.dests_of(0, 1) == {1, 2}
        assert len(log) == 1

    def test_duplicate_insert_intersects(self):
        log = OptTrackLog()
        log.insert(0, 1, {1, 2, 3})
        log.insert(0, 1, {2, 3, 4})
        assert log.dests_of(0, 1) == {2, 3}

    def test_merge_unions_distinct_records(self):
        log = OptTrackLog()
        log.insert(0, 1, {1})
        log.merge([entry(1, 1, 2), entry(2, 3, 4)])
        assert len(log) == 3

    def test_merge_intersects_duplicates(self):
        log = OptTrackLog()
        log.insert(0, 5, {1, 2})
        log.merge([entry(0, 5, 2, 3)])
        assert log.dests_of(0, 5) == {2}

    def test_empty_marker_in_merge_clears_stale_dests(self):
        # the newest-per-writer empty record shipped by a peer lets this
        # site drop its own stale destination knowledge
        log = OptTrackLog()
        log.insert(0, 5, {1, 2, 3})
        log.insert(0, 9, {4})  # newer record keeps writer 0 "alive"
        log.merge([entry(0, 5)])
        assert (0, 5) not in log  # emptied and superseded -> purged


class TestConditionTwoAtSend:
    def test_remove_dests_strips_everywhere(self):
        log = OptTrackLog()
        log.insert(0, 1, {1, 2})
        log.insert(1, 4, {2, 3})
        log.remove_dests({2})
        assert log.dests_of(0, 1) == {1}
        assert log.dests_of(1, 4) == {3}

    def test_remove_dests_empty_set_noop(self):
        log = OptTrackLog()
        log.insert(0, 1, {1})
        log.remove_dests(set())
        assert log.dests_of(0, 1) == {1}


class TestPurge:
    def test_superseded_empty_records_removed(self):
        log = OptTrackLog()
        log.insert(0, 1, set())
        log.insert(0, 2, {3})
        log.purge()
        assert (0, 1) not in log
        assert (0, 2) in log

    def test_newest_empty_record_kept(self):
        log = OptTrackLog()
        log.insert(0, 2, set())
        log.purge()
        assert (0, 2) in log  # most recent from writer 0: keep even empty

    def test_condition_one_strips_self_when_applied(self):
        log = OptTrackLog()
        log.insert(0, 3, {5, 6})
        log.purge(self_site=5, applied=[3, 0])  # writer 0 applied up to 3 at site 5
        assert log.dests_of(0, 3) == {6}

    def test_condition_one_respects_apply_clock(self):
        log = OptTrackLog()
        log.insert(0, 3, {5})
        log.purge(self_site=5, applied=[2, 0])  # only clock 2 applied: keep
        assert log.dests_of(0, 3) == {5}


class TestTombstones:
    def test_emptied_record_never_returns(self):
        log = OptTrackLog()
        log.insert(0, 1, {2})
        log.insert(0, 2, {3})
        log.remove_dests({2})
        log.purge()  # (0,1) now empty and superseded -> tombstoned
        assert (0, 1) not in log
        log.insert(0, 1, {2, 4})  # stale re-import from an old LastWriteOn
        assert (0, 1) not in log

    def test_merge_cannot_reinfect(self):
        log = OptTrackLog()
        log.insert(0, 1, {2})
        log.insert(0, 2, {3})
        log.remove_dests({2})
        log.purge()
        log.merge([entry(0, 1, 2)])
        assert (0, 1) not in log

    def test_tombstone_not_counted_in_size(self):
        log = OptTrackLog()
        log.insert(0, 1, {2})
        log.insert(0, 2, {3})
        log.remove_dests({2})
        log.purge()
        assert len(log) == 1


class TestPiggybackViews:
    def test_receiver_kept_others_stripped(self):
        log = OptTrackLog()
        log.insert(0, 1, {1, 2, 9})
        views, base = log.piggyback_views(frozenset({1, 2}))
        # copy to 1 keeps 1 (its own gate) but not co-destination 2
        (e1,) = views[1]
        assert e1.dests == {1, 9}
        (e2,) = views[2]
        assert e2.dests == {2, 9}
        # shared/stored view strips both
        (eb,) = base
        assert eb.dests == {9}

    def test_dead_records_not_shipped(self):
        log = OptTrackLog()
        log.insert(0, 1, {2})  # will empty under stripping
        log.insert(0, 9, {7})  # newest from writer 0
        views, base = log.piggyback_views(frozenset({2, 3}))
        # stored view omits the dead (0,1) record
        assert [(e.writer, e.clock) for e in base] == [(0, 9)]
        # but the copy to 2 still carries its gate
        assert any(e.clock == 1 and e.dests == {2} for e in views[2])
        # the copy to 3 has no use for it
        assert all(e.clock != 1 for e in views[3])

    def test_newest_empty_marker_ships(self):
        log = OptTrackLog()
        log.insert(4, 7, {2})
        views, base = log.piggyback_views(frozenset({2}))
        # stripping empties it, but it is the newest from writer 4:
        # shipped as a marker
        assert [(e.writer, e.clock, set(e.dests)) for e in base] == [(4, 7, set())]

    def test_piggyback_for_matches_views(self):
        log = OptTrackLog()
        log.insert(0, 1, {1, 2, 5})
        log.insert(3, 2, {2})
        log.insert(3, 4, {5})
        D = frozenset({1, 2})
        views, base = log.piggyback_views(D)
        for d in D:
            assert log.piggyback_for(d, D) == views[d]

    def test_views_share_structure_when_possible(self):
        log = OptTrackLog()
        log.insert(0, 1, {9})  # mentions no multicast destination
        views, base = log.piggyback_views(frozenset({1, 2}))
        assert views[1] is base and views[2] is base


class TestLogMisc:
    def test_entries_sorted(self):
        log = OptTrackLog()
        log.insert(1, 2, {0})
        log.insert(0, 5, {0})
        log.insert(0, 1, {0})
        keys = [(e.writer, e.clock) for e in log.entries()]
        assert keys == [(0, 1), (0, 5), (1, 2)]

    def test_max_clock(self):
        log = OptTrackLog()
        assert log.max_clock(0) == 0
        log.insert(0, 3, {1})
        log.insert(0, 7, {1})
        assert log.max_clock(0) == 7

    def test_snapshot_and_copy_independent(self):
        log = OptTrackLog()
        log.insert(0, 1, {1})
        snap = log.snapshot()
        copy = log.copy()
        log.remove_dests({1})
        assert snap[0].dests == {1}
        assert copy.dests_of(0, 1) == {1}

    def test_dest_counts(self):
        log = OptTrackLog()
        log.insert(0, 1, {1, 2})
        log.insert(1, 1, set())
        assert sorted(log.dest_counts()) == [0, 2]


class TestTupleLog:
    def test_add_keeps_max_per_writer(self):
        log = TupleLog()
        log.add(0, 3)
        log.add(0, 1)  # older: ignored
        log.add(0, 5)
        assert log.entries() == ((0, 5),)

    def test_reset_to_singleton(self):
        log = TupleLog()
        log.add(1, 2)
        log.add(2, 9)
        log.reset(0, 4)
        assert log.entries() == ((0, 4),)
        assert len(log) == 1

    def test_merge(self):
        log = TupleLog([(0, 1)])
        log.merge([(0, 5), (1, 2)])
        assert log.entries() == ((0, 5), (1, 2))

    def test_clock_of(self):
        log = TupleLog([(3, 7)])
        assert log.clock_of(3) == 7
        assert log.clock_of(0) == 0

    def test_bounded_by_writers(self):
        log = TupleLog()
        for c in range(100):
            log.add(c % 4, c + 1)
        assert len(log) == 4
