"""Property-based tests (hypothesis).

The heavyweight property: for *any* small workload, placement, latency
regime, and seed, every protocol produces a causally consistent history,
finishes every schedule, and drains every buffer.  This is the closest a
simulation can get to model-checking the activation predicates.

Lighter structural properties cover the core data structures: clock
merge is a join, log pruning never adds destinations, piggyback views
never lose a receiver's own gating information, and the CRP tuple log is
bounded by the number of writers.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    AdversarialLatency,
    ConstantLatency,
    SimulationConfig,
    UniformLatency,
    check_causal_consistency,
    run_simulation,
)
from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import OptTrackLog, PiggybackEntry, TupleLog

SIM_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

protocols = st.sampled_from(["full-track", "opt-track", "opt-track-crp", "optp"])
latencies = st.sampled_from([
    ConstantLatency(15.0),
    UniformLatency(1.0, 300.0),
    AdversarialLatency(),
])


@st.composite
def sim_configs(draw):
    protocol = draw(protocols)
    n = draw(st.integers(2, 7))
    q = draw(st.integers(2, 10))
    full = protocol in ("opt-track-crp", "optp")
    p = n if full else draw(st.integers(1, n))
    return SimulationConfig(
        protocol=protocol,
        n_sites=n,
        n_vars=q,
        replication_factor=p,
        write_rate=draw(st.floats(0.0, 1.0)),
        ops_per_process=draw(st.integers(5, 30)),
        seed=draw(st.integers(0, 10_000)),
        latency=draw(latencies),
        record_history=True,
        max_events=200_000,
    )


class TestProtocolSafetyAndLiveness:
    @SIM_SETTINGS
    @given(cfg=sim_configs())
    def test_causal_consistency_and_quiescence(self, cfg):
        result = run_simulation(cfg)  # strict: raises if stuck
        report = check_causal_consistency(result.history, result.placement)
        report.raise_if_violated()
        assert all(p.pending_count == 0 for p in result.protocols)

    @SIM_SETTINGS
    @given(
        n=st.integers(2, 6),
        wr=st.floats(0.1, 0.9),
        seed=st.integers(0, 1000),
    )
    def test_partial_protocols_agree_on_counts(self, n, wr, seed):
        from repro.experiments.sweep import paired_runs
        from repro.metrics.collector import MessageKind

        runs = paired_runs(("full-track", "opt-track"), n, wr,
                           ops_per_process=15, seed=seed)
        for kind in MessageKind:
            assert (runs["full-track"].collector.tally(kind).count
                    == runs["opt-track"].collector.tally(kind).count)


# ----------------------------------------------------------------------
# data-structure properties
# ----------------------------------------------------------------------
matrices = st.integers(2, 5).flatmap(
    lambda n: st.lists(
        st.lists(st.integers(0, 20), min_size=n, max_size=n),
        min_size=n, max_size=n,
    ).map(lambda rows: MatrixClock(n, np.array(rows)))
)


class TestClockProperties:
    @given(m=matrices)
    @settings(max_examples=50, deadline=None)
    def test_merge_idempotent(self, m):
        a = m.copy()
        a.merge(m)
        assert a == m

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_merge_commutative_and_dominating(self, data):
        n = data.draw(st.integers(2, 4))
        rows = st.lists(
            st.lists(st.integers(0, 9), min_size=n, max_size=n),
            min_size=n, max_size=n,
        )
        a = MatrixClock(n, np.array(data.draw(rows)))
        b = MatrixClock(n, np.array(data.draw(rows)))
        ab, ba = a.copy(), b.copy()
        ab.merge(b)
        ba.merge(a)
        assert ab == ba
        assert ab.dominates(a) and ab.dominates(b)

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_vector_merge_associative(self, data):
        n = data.draw(st.integers(1, 5))
        vec = st.lists(st.integers(0, 9), min_size=n, max_size=n)
        a = VectorClock(n, data.draw(vec))
        b = VectorClock(n, data.draw(vec))
        c = VectorClock(n, data.draw(vec))
        left = a.copy()
        bc = b.copy()
        bc.merge(c)
        left.merge(bc)
        right = a.copy()
        right.merge(b)
        right.merge(c)
        assert left == right


entries_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.integers(1, 8),
              st.frozensets(st.integers(0, 5), max_size=4)),
    max_size=12,
).map(lambda raw: [PiggybackEntry(j, c, d) for j, c, d in raw])


class TestLogProperties:
    @given(entries=entries_strategy, dests=st.frozensets(st.integers(0, 5), max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_piggyback_keeps_receiver_gates(self, entries, dests):
        # for every destination d: any record naming d in the original
        # log must still name d in the copy shipped to d
        log = OptTrackLog(entries)
        views, _ = log.piggyback_views(dests)
        for d in dests:
            shipped = {(e.writer, e.clock): e.dests for e in views[d]}
            for e in log.entries():
                if d in e.dests:
                    assert d in shipped[(e.writer, e.clock)]

    @given(entries=entries_strategy, dests=st.frozensets(st.integers(0, 5), max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_piggyback_never_adds_destinations(self, entries, dests):
        log = OptTrackLog(entries)
        original = {(e.writer, e.clock): e.dests for e in log.entries()}
        views, base = log.piggyback_views(dests)
        for view in list(views.values()) + [base]:
            for e in view:
                assert e.dests <= original[(e.writer, e.clock)]

    @given(entries=entries_strategy, other=entries_strategy)
    @settings(max_examples=100, deadline=None)
    def test_merge_monotone_knowledge(self, entries, other):
        # after a merge, every surviving record's destination set is a
        # subset of what either source knew (knowledge only shrinks)
        log = OptTrackLog(entries)
        before = {(e.writer, e.clock): e.dests for e in log.entries()}
        incoming = {(e.writer, e.clock): e.dests for e in other}
        log.merge(other)
        for e in log.entries():
            key = (e.writer, e.clock)
            bounds = [s for s in (before.get(key), incoming.get(key)) if s is not None]
            assert any(e.dests <= b for b in bounds)

    @given(entries=entries_strategy)
    @settings(max_examples=100, deadline=None)
    def test_purge_keeps_newest_per_writer(self, entries):
        log = OptTrackLog(entries)
        writers_before = {e.writer for e in log.entries()}
        log.purge()
        writers_after = {e.writer for e in log.entries()}
        assert writers_before == writers_after

    @given(pairs=st.lists(st.tuples(st.integers(0, 3), st.integers(1, 50)), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_tuple_log_bounded_and_max(self, pairs):
        log = TupleLog()
        for j, c in pairs:
            log.add(j, c)
        assert len(log) <= 4
        for j in {j for j, _ in pairs}:
            assert log.clock_of(j) == max(c for jj, c in pairs if jj == j)


class TestWorkloadProperties:
    @given(
        n=st.integers(1, 6),
        wr=st.floats(0.0, 1.0),
        ops=st.integers(1, 60),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_generator_always_valid(self, n, wr, ops, seed):
        from repro.workload.generator import generate_workload

        wl = generate_workload(n, n_vars=7, write_rate=wr,
                               ops_per_process=ops, seed=seed)
        assert wl.total_operations == n * ops
        assert wl.total_writes + wl.total_reads == wl.total_operations
        for sched in wl.schedules:
            times = [t for t, _ in sched.items]
            assert times == sorted(times)
