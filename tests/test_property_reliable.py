"""Property test: the reliable layer gives exactly-once FIFO delivery.

Satellite of the chaos-transport PR: for *random* fault plans layered
under ``AdversarialLatency``, every message handed to ``Network.send``
arrives at its destination exactly once and in per-channel FIFO order —
no loss, no duplicates, no reordering observable above the transport.

Fault plans are constrained only enough to guarantee termination:
drop rates stay below 0.5 and any partition heals within the run.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector, FaultPlan, Partition
from repro.sim.network import AdversarialLatency, Network
from repro.sim.reliable import RetransmitPolicy

N_SITES = 4

#: tight timers so heavily-dropped runs converge in few simulated seconds
POLICY = RetransmitPolicy(base_rto_ms=80.0, max_rto_ms=1000.0, jitter_ms=8.0)

fault_plans = st.builds(
    FaultPlan.uniform,
    drop_rate=st.floats(0.0, 0.45),
    dup_rate=st.floats(0.0, 0.4),
    spike_rate=st.floats(0.0, 0.3),
    spike_ms=st.just((20.0, 600.0)),
    partitions=st.one_of(
        st.just(()),
        st.builds(
            lambda site, start, dur: (Partition([site], start, start + dur),),
            site=st.integers(0, N_SITES - 1),
            start=st.floats(0.0, 500.0),
            dur=st.floats(1.0, 2000.0),
        ),
    ),
)


class TestReliableProperties:
    @given(
        plan=fault_plans,
        fault_seed=st.integers(0, 10_000),
        net_seed=st.integers(0, 10_000),
        sends=st.lists(
            st.tuples(st.integers(0, N_SITES - 1), st.integers(0, N_SITES - 1)),
            min_size=1, max_size=50,
        ),
    )
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_exactly_once_fifo_under_random_faults(
        self, plan, fault_seed, net_seed, sends
    ):
        sim = Simulator()
        injector = FaultInjector(plan, rng=np.random.default_rng(fault_seed))
        net = Network(sim, N_SITES, AdversarialLatency(0.5, 800.0),
                      rng=np.random.default_rng(net_seed),
                      faults=injector, retransmit=POLICY)
        received: dict[tuple[int, int], list] = {}
        for i in range(N_SITES):
            def recv(src, msg, i=i):
                received.setdefault((src, i), []).append(msg)
            net.register(i, recv)

        sent: dict[tuple[int, int], int] = {}
        for src, dst in sends:
            key = (src, dst)
            net.send(src, dst, sent.get(key, 0))
            sent[key] = sent.get(key, 0) + 1
        sim.run()

        # exactly once, in send order, on every channel — and nothing
        # arrived on channels never sent on
        for key, count in sent.items():
            assert received.get(key, []) == list(range(count)), (
                f"channel {key}: sent {count}, got {received.get(key)}"
            )
        assert set(received) <= set(sent)
        # the transport fully drained: no retransmission timer still live
        assert net.transport.unacked_count() == 0
