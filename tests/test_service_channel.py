"""ServiceChannel/ServiceTransport under a deterministic StepClock."""

import pytest

from repro.core.messages import FetchMessage
from repro.core.netpolicy import OverloadError, RetransmitPolicy
from repro.service.channel import ServiceTransport
from repro.service.codec import loads, dumps
from repro.service.runtime import StepClock


def fm(request_id):
    return FetchMessage(var=0, reader=0, request_id=request_id)


class Harness:
    """Two transports joined by manually pumped frame queues."""

    def __init__(self, policy=None, drop=None):
        self.clock = StepClock()
        self.wire: list[tuple[int, bytes]] = []  # (dst, frame bytes)
        self.delivered: dict[int, list] = {0: [], 1: []}
        self.drop = drop if drop is not None else (lambda dst, frame: False)
        self.transports = {
            site: ServiceTransport(
                site, self.clock,
                self._send_frame,
                self._make_deliver(site),
                policy=policy,
            )
            for site in (0, 1)
        }

    def _send_frame(self, dst, frame):
        if not self.drop(dst, frame):
            self.wire.append((dst, dumps(frame)))

    def _make_deliver(self, site):
        return lambda src, msg: self.delivered[site].append((src, msg))

    def pump(self):
        while self.wire:
            dst, payload = self.wire.pop(0)
            self.transports[dst].on_frame(loads(payload))


class TestDelivery:
    def test_in_order_delivery_and_ack(self):
        h = Harness()
        for i in range(5):
            h.transports[0].send(0, 1, fm(i))
        h.pump()
        assert [m.request_id for _, m in h.delivered[1]] == [0, 1, 2, 3, 4]
        assert h.transports[0].pending_total() == 0  # all acked

    def test_duplicate_frames_dropped(self):
        h = Harness()
        h.transports[0].send(0, 1, fm(0))
        dup = list(h.wire)
        h.pump()
        h.wire.extend(dup)  # replay the same data frame
        h.pump()
        assert len(h.delivered[1]) == 1
        assert h.transports[1].channel(0).duplicate_drops == 1

    def test_reordered_frames_reassembled(self):
        h = Harness()
        h.transports[0].send(0, 1, fm(0))
        h.transports[0].send(0, 1, fm(1))
        h.transports[0].send(0, 1, fm(2))
        assert len(h.wire) == 3
        h.wire[0], h.wire[2] = h.wire[2], h.wire[0]  # arrive 2,1,0
        h.pump()
        assert [m.request_id for _, m in h.delivered[1]] == [0, 1, 2]

    def test_sender_identity_enforced(self):
        h = Harness()
        with pytest.raises(ValueError, match="asked to send as"):
            h.transports[0].send(1, 0, fm(0))


class TestRetransmission:
    def test_lost_frame_recovered_by_timer(self):
        lost = {"armed": True}

        def drop(dst, frame):
            if lost["armed"] and frame.get("k") == "data":
                lost["armed"] = False
                return True
            return False

        h = Harness(drop=drop)
        h.transports[0].send(0, 1, fm(0))
        h.pump()
        assert h.delivered[1] == []  # first copy lost
        h.clock.advance(1000.0)     # past base RTO + jitter
        h.pump()
        assert [m.request_id for _, m in h.delivered[1]] == [0]
        assert h.transports[0].channel(1).retransmissions >= 1
        assert h.transports[0].pending_total() == 0

    def test_rto_backs_off_while_unacked(self):
        h = Harness(drop=lambda dst, frame: frame.get("k") == "data")
        policy = h.transports[0].policy
        h.transports[0].send(0, 1, fm(0))
        ch = h.transports[0].channel(1)
        assert ch.rto == policy.base_rto_ms
        h.clock.advance(policy.base_rto_ms + policy.jitter_ms + 1)
        assert ch.rto == policy.base_rto_ms * policy.backoff
        assert ch.consecutive_timeouts == 1

    def test_rtt_samples_shrink_rto(self):
        h = Harness()
        ch = h.transports[0].channel(1)
        for i in range(6):
            h.transports[0].send(0, 1, fm(i))
            h.clock.tick(10.0)  # 10 ms "network" round trip
            h.pump()
        assert ch.rtt_samples == 6
        assert ch.srtt == pytest.approx(10.0, abs=2.0)
        assert ch.rto < h.transports[0].policy.base_rto_ms

    def test_karn_rule_skips_retransmitted_samples(self):
        first = {"armed": True}

        def drop(dst, frame):
            if first["armed"] and frame.get("k") == "data":
                first["armed"] = False
                return True
            return False

        h = Harness(drop=drop)
        ch = h.transports[0].channel(1)
        h.transports[0].send(0, 1, fm(0))
        h.clock.advance(1000.0)  # retransmit fires
        h.pump()                 # ack for a retransmitted seq: ambiguous
        assert ch.rtt_samples == 0


class TestFlowControl:
    def test_window_bounds_in_flight_frames(self):
        policy = RetransmitPolicy(send_window=2)
        h = Harness(policy=policy)
        for i in range(5):
            h.transports[0].send(0, 1, fm(i))
        # only the window's worth of data frames hit the wire
        assert len(h.wire) == 2
        assert h.transports[0].overloaded(0) is True
        h.pump()  # acks promote the backlog
        h.pump()
        assert [m.request_id for _, m in h.delivered[1]] == [0, 1, 2, 3, 4]
        assert h.transports[0].overloaded(0) is False

    def test_admission_control_sheds_past_backlog_cap(self):
        policy = RetransmitPolicy(send_window=1, shed_backlog=3)
        h = Harness(policy=policy, drop=lambda dst, frame: True)
        for i in range(4):
            h.transports[0].send(0, 1, fm(i))
        with pytest.raises(OverloadError):
            h.transports[0].check_overload_admission(0)

    def test_malformed_frames_ignored(self):
        h = Harness()
        h.transports[0].on_frame({"k": "data"})          # no src
        h.transports[0].on_frame({"k": "hello", "src": 1})
        assert h.delivered[0] == []
