"""Tests for the observability subsystem (``repro.obs``).

Covers the three contracts the tracer must keep:

* **zero overhead** — a ``tracer=None`` run is byte-identical to the
  seed code path, and a traced run produces *identical protocol
  metrics* to an untraced one (the tracer is passive);
* **determinism** — two traced runs of the same config export
  byte-identical JSONL trace files;
* **causality** — parent links and ``waited_on`` lists reconstruct the
  message chain behind any buffered activation.

Plus the reservoir-percentile extension of ``RunningStat`` and the
Chrome ``trace_event`` export (golden-file schema check).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import SimulationConfig, run_simulation
from repro.metrics.stats import RESERVOIR_CAPACITY, RunningStat, summarize
from repro.obs import (
    TimeSeries,
    TraceIndex,
    Tracer,
    causal_chain,
    diff_traces,
    format_chain,
    load_trace,
    slowest_activations,
    summarize_trace,
    to_chrome,
    write_chrome,
    write_jsonl,
)
from repro.sim.faults import ChannelFaults, FaultPlan
from repro.sim.network import AdversarialLatency, ConstantLatency

ALL_PROTOCOLS = ("full-track", "opt-track", "opt-track-crp", "optp")

GOLDEN_DIR = Path(__file__).parent / "golden"


def tiny_cfg(protocol="opt-track", **overrides):
    base = dict(protocol=protocol, n_sites=4, n_vars=12,
                ops_per_process=30, seed=3)
    base.update(overrides)
    return SimulationConfig(**base)


def buffered_cfg():
    """Adversarial latency + tight op gaps: some SMs must buffer."""
    return SimulationConfig(
        protocol="opt-track", n_sites=5, n_vars=20, ops_per_process=60,
        gap_range_ms=(1.0, 40.0), latency=AdversarialLatency(), seed=7,
    )


def golden_cfg():
    """Fixed tiny run backing the Chrome-export golden file."""
    return SimulationConfig(
        protocol="opt-track", n_sites=3, n_vars=6, ops_per_process=8,
        latency=ConstantLatency(5.0), seed=1,
    )


# ----------------------------------------------------------------------
# RunningStat percentiles (reservoir sampling)
# ----------------------------------------------------------------------
class TestPercentiles:
    def test_exact_below_capacity(self):
        rs = RunningStat()
        rs.extend(range(101))  # 0..100
        assert rs.p50 == pytest.approx(50.0)
        assert rs.p95 == pytest.approx(95.0)
        assert rs.p99 == pytest.approx(99.0)
        assert rs.percentile(0) == 0.0 and rs.percentile(100) == 100.0

    def test_empty_stream_is_zero(self):
        rs = RunningStat()
        assert rs.p50 == 0.0 and rs.p95 == 0.0 and rs.p99 == 0.0
        assert rs.quantiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_overflow_is_deterministic_and_sane(self):
        a, b = RunningStat(), RunningStat()
        n = 4 * RESERVOIR_CAPACITY
        for i in range(n):
            x = float(i % 1000)
            a.add(x)
            b.add(x)
        # identical streams -> identical reservoirs -> identical tails
        assert a.quantiles() == b.quantiles()
        assert len(a._reservoir) == RESERVOIR_CAPACITY
        # the estimate must land in the right region of a uniform stream
        assert 400 <= a.p50 <= 600
        assert 900 <= a.p95 <= 1000

    def test_merge_combines_reservoirs(self):
        a, b = RunningStat(), RunningStat()
        a.extend([1.0] * 10)
        b.extend([100.0] * 10)
        a.merge(b)
        assert a.count == 20
        assert a.p50 in (1.0, 100.0) or 1.0 < a.p50 < 100.0
        assert a.p99 == pytest.approx(100.0)

    def test_summarize_reports_p99(self):
        s = summarize(range(1, 1001))
        assert s.p50 == pytest.approx(500.5)
        assert s.p99 == pytest.approx(990.01)
        assert summarize([]).p99 == 0.0


# ----------------------------------------------------------------------
# TimeSeries
# ----------------------------------------------------------------------
class TestTimeSeries:
    def test_bucketing_and_stats(self):
        ts = TimeSeries(bucket_ms=100.0)
        ts.observe("x", 10.0, 1.0)
        ts.observe("x", 90.0, 3.0)
        ts.observe("x", 150.0, 10.0)
        series = ts.series("x")
        assert [t for t, _ in series] == [0, 100]
        assert series[0][1].mean == pytest.approx(2.0)
        assert series[1][1].maximum == 10.0

    def test_incr_and_rate(self):
        ts = TimeSeries(bucket_ms=100.0)
        for t in (5.0, 10.0, 205.0):
            ts.incr("events", t)
        rate = dict(ts.rate("events"))
        assert rate[0] == pytest.approx(2 / 100.0)  # 2 events per 100 ms
        assert rate[200] == pytest.approx(1 / 100.0)

    def test_roundtrip(self):
        ts = TimeSeries(bucket_ms=50.0)
        ts.observe("a", 12.0, 4.0)
        ts.incr("b", 80.0)
        back = TimeSeries.from_dict(ts.as_dict())
        assert back.as_dict() == ts.as_dict()
        assert sorted(back.names()) == ["a", "b"]


# ----------------------------------------------------------------------
# zero-overhead contract
# ----------------------------------------------------------------------
class TestZeroOverhead:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_metrics_identical_with_and_without_tracer(self, protocol):
        cfg = tiny_cfg(protocol)
        untraced = run_simulation(cfg)
        traced = run_simulation(cfg, tracer=Tracer())
        assert traced.collector.as_dict() == untraced.collector.as_dict()
        assert traced.sim_time_ms == untraced.sim_time_ms
        assert traced.total_sim_events == untraced.total_sim_events

    def test_metrics_identical_under_chaos(self):
        plan = FaultPlan.build(default=ChannelFaults(drop_rate=0.1))
        cfg = tiny_cfg("optp", fault_plan=plan)
        untraced = run_simulation(cfg)
        traced = run_simulation(cfg, tracer=Tracer())
        assert traced.collector.as_dict() == untraced.collector.as_dict()


# ----------------------------------------------------------------------
# determinism of the trace itself
# ----------------------------------------------------------------------
class TestTraceDeterminism:
    def test_two_traced_runs_export_identical_jsonl(self, tmp_path):
        paths = []
        for i in range(2):
            tracer = Tracer()
            run_simulation(buffered_cfg(), tracer=tracer)
            paths.append(write_jsonl(tracer, tmp_path / f"t{i}.jsonl"))
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        run_simulation(tiny_cfg(), tracer=tracer)
        trace = tracer.to_trace()
        loaded = load_trace(write_jsonl(trace, tmp_path / "t.jsonl"))
        assert loaded.meta["protocol"] == "opt-track"
        assert len(loaded.events) == len(trace.events)
        assert [e.to_json() for e in loaded.events] == [
            e.to_json() for e in trace.events
        ]
        assert loaded.timeseries.as_dict() == trace.timeseries.as_dict()


# ----------------------------------------------------------------------
# causal structure
# ----------------------------------------------------------------------
class TestCausalLinks:
    @pytest.fixture(scope="class")
    def buffered_trace(self):
        tracer = Tracer()
        run_simulation(buffered_cfg(), tracer=tracer)
        return tracer.to_trace()

    def test_every_parent_exists_and_precedes(self, buffered_trace):
        by_id = buffered_trace.by_id()
        for ev in buffered_trace.events:
            if ev.parent is not None:
                assert ev.parent in by_id
                assert by_id[ev.parent].ts <= ev.ts

    def test_deliver_parents_are_sends(self, buffered_trace):
        by_id = buffered_trace.by_id()
        delivers = buffered_trace.of_kind("msg.deliver")
        assert delivers
        for ev in delivers:
            assert by_id[ev.parent].kind == "msg.send"
            assert ev.attrs["latency_ms"] >= 0

    def test_buffered_activation_has_waited_on_sends(self, buffered_trace):
        by_id = buffered_trace.by_id()
        buffered = [ev for ev in buffered_trace.of_kind("sm.activate")
                    if ev.attrs.get("waited_ms", 0) > 0]
        assert buffered, "adversarial config must buffer at least one SM"
        for ev in buffered:
            assert ev.attrs["waited_on"], "buffered SM waited on something"
            for send_id in ev.attrs["waited_on"]:
                assert by_id[send_id].kind == "msg.send"

    def test_slowest_activation_chain_renders(self, buffered_trace):
        index = TraceIndex(buffered_trace)
        slowest = slowest_activations(buffered_trace, k=1)
        assert slowest and slowest[0].attrs["waited_ms"] > 0
        text = format_chain(index, slowest[0])
        assert "buffered" in text
        assert "waited on" in text
        assert "deliver" in text

    def test_summary_reports_tail_latencies(self, buffered_trace):
        text = summarize_trace(buffered_trace, top=1)
        assert "p50=" in text and "p95=" in text and "p99=" in text
        assert "slowest activations" in text

    def test_diff_is_zero_against_itself(self, buffered_trace):
        text = diff_traces(buffered_trace, buffered_trace)
        for line in text.splitlines()[1:]:
            assert line.rstrip().endswith(("0", "0.0")), line


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------
class TestChromeExport:
    def test_thousand_op_run_exports_valid_chrome_json(self, tmp_path):
        cfg = SimulationConfig(protocol="opt-track", n_sites=5, n_vars=20,
                               ops_per_process=200, seed=11)
        tracer = Tracer()
        result = run_simulation(cfg, tracer=tracer)
        assert result.workload.total_operations >= 1000
        path = write_chrome(tracer, tmp_path / "chrome.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["protocol"] == "opt-track"
        phases = {e["ph"] for e in events}
        assert {"M", "X", "s", "f", "C"} <= phases
        # one named track per site
        threads = [e for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in threads} == {
            f"site {i}" for i in range(5)
        }
        for e in events:
            assert e["ph"] in ("M", "X", "s", "f", "i", "C")
            if e["ph"] == "X":
                assert e["dur"] >= 0 and "ts" in e
        # every flow-finish binds to an emitted flow-start id
        starts = {e["id"] for e in events if e["ph"] == "s"}
        finishes = {e["id"] for e in events if e["ph"] == "f"}
        assert finishes <= starts

    def test_matches_golden_schema(self):
        tracer = Tracer()
        run_simulation(golden_cfg(), tracer=tracer)
        produced = to_chrome(tracer)
        golden = json.loads(
            (GOLDEN_DIR / "trace_chrome_small.json").read_text()
        )
        assert produced == golden, (
            "Chrome export changed; if intentional, regenerate the golden "
            "file with tests/golden/regen_trace_chrome.py"
        )


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestTraceCliSubcommands:
    def test_run_then_summarize_then_diff(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t"
        rc = main(["trace", "run", str(out), "-n", "4", "--ops", "25",
                   "--latency", "adversarial"])
        assert rc == 0
        assert (out / "trace.jsonl").exists()
        assert (out / "trace_chrome.json").exists()
        run_out = capsys.readouterr().out
        assert "visibility lag ms" in run_out

        rc = main(["trace", "summarize", str(out / "trace.jsonl")])
        assert rc == 0
        sum_out = capsys.readouterr().out
        assert "p99=" in sum_out

        rc = main(["trace", "diff", str(out / "trace.jsonl"),
                   str(out / "trace.jsonl")])
        assert rc == 0
        assert "delta" in capsys.readouterr().out
