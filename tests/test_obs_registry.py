"""Tests for the metrics registry, metadata ledger, and exporters.

Covers the observability acceptance invariants:

* ledger <-> collector cross-check: the per-component byte totals sum
  exactly to the collector's Table-II/III message totals, per protocol,
  in both windows (lifetime and warm-up-gated measured);
* ``registry=None`` is byte-identical to the seed behaviour;
* same-seed double runs export byte-identical Prometheus/JSON dumps;
* per-message decomposition sums exactly to ``metadata_size``;
* TimeSeries / reservoir / bucket-quantile edge cases;
* the ``repro metrics`` CLI surface (run / summarize / diff).
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.clocks import MatrixClock, VectorClock
from repro.core.log import PiggybackEntry
from repro.core.messages import (
    CRPSM,
    FetchMessage,
    FullTrackRM,
    FullTrackSM,
    OptPSM,
    OptTrackRM,
    OptTrackSM,
)
from repro.memory.store import WriteId
from repro.metrics.sizing import SizeModel
from repro.metrics.stats import RunningStat, percentile
from repro.obs.export import (
    diff_snapshots,
    flatten_snapshot,
    ledger_table,
    registry_snapshot,
    to_prometheus,
)
from repro.obs.ledger import MetadataLedger, decompose_message
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.timeseries import TimeSeries
from repro.experiments.runner import SimulationConfig, run_simulation

ALL_PROTOCOLS = ("full-track", "opt-track", "opt-track-crp", "optp")


def small_cfg(protocol: str, **overrides) -> SimulationConfig:
    defaults = dict(protocol=protocol, n_sites=5, n_vars=12, write_rate=0.5,
                    ops_per_process=60, seed=13)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


# ----------------------------------------------------------------------
# satellite 1: ledger <-> collector cross-check
# ----------------------------------------------------------------------
class TestLedgerCrosscheck:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_ledger_sums_exactly_to_collector(self, protocol):
        registry = MetricsRegistry()
        result = run_simulation(small_cfg(protocol), registry=registry)
        assert registry.ledger.crosscheck(result.collector) == []
        # the run really sent messages (the check isn't vacuous)
        assert registry.ledger.total_count(window="lifetime") > 0
        assert registry.ledger.total_bytes(window="lifetime") > 0

    def test_measured_window_is_warmup_gated(self):
        registry = MetricsRegistry()
        run_simulation(small_cfg("opt-track"), registry=registry)
        ledger = registry.ledger
        lifetime = ledger.total_count(window="lifetime")
        measured = ledger.total_count(window="measured")
        assert 0 < measured < lifetime

    def test_crosscheck_reports_discrepancies(self):
        registry = MetricsRegistry()
        result = run_simulation(small_cfg("opt-track"), registry=registry)
        # corrupt one lifetime cell; the check must name the kind
        cell = next(iter(registry.ledger.lifetime.values()))
        cell.count += 1
        problems = registry.ledger.crosscheck(result.collector)
        assert problems and any("count" in p for p in problems)

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_component_totals_sum_to_kind_bytes(self, protocol):
        registry = MetricsRegistry()
        run_simulation(small_cfg(protocol), registry=registry)
        for window in ("lifetime", "measured"):
            cells = registry.ledger._window(window)
            for key, cell in cells.items():
                assert sum(cell.components.values()) == cell.bytes, key


# ----------------------------------------------------------------------
# satellite 6: determinism / zero-perturbation
# ----------------------------------------------------------------------
class TestRegistryDeterminism:
    def test_registry_none_does_not_perturb_collector(self):
        on = run_simulation(small_cfg("opt-track"), registry=MetricsRegistry())
        off = run_simulation(small_cfg("opt-track"))
        assert on.collector.as_dict() == off.collector.as_dict()

    def test_same_seed_double_run_dumps_are_byte_identical(self):
        def dump():
            registry = MetricsRegistry()
            run_simulation(small_cfg("opt-track"), registry=registry)
            prom = to_prometheus(registry)
            snap = json.dumps(registry_snapshot(registry), sort_keys=True)
            return prom, snap

        first, second = dump(), dump()
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_ledger_roundtrips_through_dict(self):
        registry = MetricsRegistry()
        run_simulation(small_cfg("opt-track"), registry=registry)
        data = registry.ledger.as_dict()
        clone = MetadataLedger.from_dict(data)
        assert clone.as_dict() == data


# ----------------------------------------------------------------------
# satellite 3 (part): the per-message decomposition invariant
# ----------------------------------------------------------------------
def _sample_messages():
    wid = WriteId(site=1, clock=3)
    log = (
        PiggybackEntry(writer=0, clock=1, dests=frozenset({1, 2})),
        PiggybackEntry(writer=2, clock=5, dests=frozenset({0})),
    )
    return [
        FetchMessage(var=1, reader=2, request_id=7),
        FetchMessage(var=1, reader=2, request_id=7,
                     requirements=((0, 2), (3, 1))),
        FullTrackSM(var=0, value=9, write_id=wid, matrix=MatrixClock(4)),
        FullTrackRM(var=0, value=9, write_id=wid, matrix=MatrixClock(4),
                    request_id=1),
        OptTrackSM(var=0, value=9, write_id=wid, log=log),
        OptTrackSM(var=0, value=9, write_id=wid, log=()),
        OptTrackRM(var=0, value=9, write_id=None, log=log, request_id=2),
        CRPSM(var=0, value=9, write_id=wid, log=((0, 1), (1, 4), (2, 2))),
        OptPSM(var=0, value=9, write_id=wid, vector=VectorClock(6)),
    ]


class TestDecomposeMessage:
    @pytest.mark.parametrize("message", _sample_messages(),
                             ids=lambda m: type(m).__name__)
    def test_components_sum_to_metadata_size(self, message):
        model = SizeModel()
        breakdown = decompose_message(message, model)
        assert sum(b for _, b in breakdown) == message.metadata_size(model)

    def test_clock_growth_splits_into_epoch_padding(self):
        model = SizeModel()
        wid = WriteId(site=0, clock=1)
        grown = FullTrackSM(var=0, value=1, write_id=wid,
                            matrix=MatrixClock(6))
        parts = dict(decompose_message(grown, model, base_n=4))
        assert parts["epoch_padding"] == (36 - 16) * model.matrix_entry
        assert sum(parts.values()) == grown.metadata_size(model)


# ----------------------------------------------------------------------
# satellite 3: TimeSeries + reservoir + bucket-quantile edge cases
# ----------------------------------------------------------------------
class TestTimeSeriesEdges:
    def test_rejects_nonpositive_bucket(self):
        with pytest.raises(ValueError):
            TimeSeries(bucket_ms=0)
        with pytest.raises(ValueError):
            TimeSeries(bucket_ms=-5)

    def test_boundary_sample_lands_in_next_bucket(self):
        ts = TimeSeries(bucket_ms=100.0)
        ts.observe("depth", 99.999, 1.0)
        ts.observe("depth", 100.0, 5.0)
        series = ts.series("depth")
        assert [t for t, _ in series] == [0.0, 100.0]
        assert series[1][1].mean == 5.0

    def test_unknown_series_is_empty(self):
        ts = TimeSeries()
        assert ts.series("nope") == []
        assert ts.points("nope") == []
        assert ts.rate("nope") == []

    def test_rate_counts_events_per_ms(self):
        ts = TimeSeries(bucket_ms=10.0)
        for t in (0.0, 1.0, 2.0, 3.0):
            ts.incr("sends", t)
        ((start, rate),) = ts.rate("sends")
        assert start == 0.0
        assert rate == pytest.approx(0.4)


class TestReservoirEdges:
    def test_add_many_matches_sequential_adds(self):
        xs = [float(i % 17) for i in range(200)]
        a, b = RunningStat(), RunningStat()
        for x in xs:
            a.add(x)
        b.add_many(xs)
        assert a.count == b.count
        assert a.total == pytest.approx(b.total)
        assert a.quantiles() == b.quantiles()

    def test_empty_stat_quantiles_are_zero(self):
        stat = RunningStat()
        assert stat.quantiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_module_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestBucketQuantiles:
    def test_interpolated_quantiles_without_reservoir(self):
        hist = Histogram(buckets=(1, 2, 4, 8), reservoir=False)
        for v in (0.5, 1.5, 1.5, 3.0, 6.0, 10.0):
            hist.observe(v)
        q = hist.quantiles()
        assert hist.count == 6
        assert 1.0 <= q["p50"] <= 4.0
        assert q["p95"] >= 8.0

    def test_empty_histogram_quantiles_are_zero(self):
        hist = Histogram(reservoir=False)
        assert hist.quantiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_cumulative_buckets_are_monotone_and_end_in_inf(self):
        hist = Histogram(buckets=(1, 10), reservoir=False)
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        rows = hist.cumulative_buckets()
        assert rows[-1][0] == "+Inf"
        counts = [c for _, c in rows]
        assert counts == sorted(counts)
        assert counts[-1] == 3


# ----------------------------------------------------------------------
# exporters + CLI surface
# ----------------------------------------------------------------------
class TestExportSurface:
    @pytest.fixture(scope="class")
    def registry(self):
        registry = MetricsRegistry()
        run_simulation(small_cfg("opt-track"), registry=registry)
        return registry

    def test_prometheus_text_shape(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE " in text
        assert "repro_metadata_bytes_total" in text
        assert 'component="' in text
        assert text.endswith("\n")

    def test_snapshot_flatten_and_self_diff(self, registry):
        snap = registry_snapshot(registry)
        flat = flatten_snapshot(snap)
        assert flat
        assert diff_snapshots(snap, snap) == []

    def test_ledger_table_renders_protocol_kinds(self, registry):
        table = ledger_table(registry.ledger, window="lifetime")
        assert "opt-track" in table
        assert "sm" in table.lower()


class TestMetricsCli:
    def test_run_summarize_diff(self, tmp_path, capsys):
        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        common = ["--protocol", "opt-track", "-n", "4", "--ops", "30",
                  "--heartbeat-ms", "0"]
        assert cli_main(["metrics", "run", str(out_a),
                         "--seed", "3", *common]) == 0
        assert cli_main(["metrics", "run", str(out_b),
                         "--seed", "4", *common]) == 0
        capsys.readouterr()

        for outdir in (out_a, out_b):
            assert (outdir / "metrics.prom").exists()
            assert (outdir / "metrics.json").exists()

        assert cli_main(["metrics", "summarize",
                         str(out_a / "metrics.json")]) == 0
        summary = capsys.readouterr().out
        assert "opt-track" in summary

        assert cli_main(["metrics", "diff", str(out_a / "metrics.json"),
                         str(out_b / "metrics.json")]) == 0
        diff_out = capsys.readouterr().out
        assert diff_out.strip()

    def test_same_seed_runs_write_identical_dumps(self, tmp_path):
        args = ["--protocol", "opt-track", "-n", "4", "--ops", "30",
                "--seed", "5", "--heartbeat-ms", "0"]
        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        assert cli_main(["metrics", "run", str(out_a), *args]) == 0
        assert cli_main(["metrics", "run", str(out_b), *args]) == 0
        assert ((out_a / "metrics.prom").read_bytes()
                == (out_b / "metrics.prom").read_bytes())
        assert ((out_a / "metrics.json").read_bytes()
                == (out_b / "metrics.json").read_bytes())
