"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "opt-track"
        assert args.sites == 10

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "bogus"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "opt-track" in out and "fig1" in out and "table4" in out

    def test_run_small(self, capsys):
        rc = main(["run", "-n", "3", "--ops", "15", "--protocol", "optp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SM_count" in out

    def test_run_with_check(self, capsys):
        rc = main(["run", "-n", "3", "--ops", "15", "--protocol", "opt-track",
                   "--check", "--latency", "adversarial"])
        assert rc == 0
        assert "causal consistency: OK" in capsys.readouterr().out

    def test_check_command(self, capsys):
        rc = main(["check", "-n", "4", "--ops", "20", "--protocol", "full-track"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_analytic(self, capsys):
        rc = main(["analytic", "-n", "20", "-w", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "opt-track-crp" in out and "partial message count" in out

    def test_crossover(self, capsys):
        rc = main(["crossover", "--max-n", "10"])
        assert rc == 0
        assert "0.667" in capsys.readouterr().out

    def test_experiment_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        rc = main(["experiment", "eq2", "--ops", "12", "--csv", str(csv_path)])
        assert rc == 0
        text = csv_path.read_text()
        assert "write_rate" in text.splitlines()[0]
        assert len(text.splitlines()) > 5

    def test_experiment_fig1_tiny(self, capsys):
        rc = main(["experiment", "fig1", "--ops", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ratio" in out


class TestOverloadFlags:
    def test_overload_plan_parsed(self):
        args = build_parser().parse_args(
            ["run", "--overload-plan", "900:2600:25:0,2",
             "--overload-plan", "3200:3800:15:2"])
        assert args.overload_plan == ["900:2600:25:0,2", "3200:3800:15:2"]

    def test_bad_overload_plan_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "-n", "3", "--ops", "5",
                  "--overload-plan", "not-a-plan"])

    def test_rto_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--adaptive-rto", "--fixed-rto"])

    def test_run_with_overload_and_window(self, capsys):
        rc = main(["run", "-n", "3", "-q", "10", "--ops", "15",
                   "--protocol", "optp", "--drop-rate", "0.05",
                   "--overload-plan", "100:400:50:0",
                   "--send-window", "8", "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "causal consistency: OK" in out

    def test_run_with_fixed_rto(self, capsys):
        rc = main(["run", "-n", "3", "-q", "10", "--ops", "15",
                   "--protocol", "optp", "--drop-rate", "0.1",
                   "--fixed-rto", "--check"])
        assert rc == 0
        assert "causal consistency: OK" in capsys.readouterr().out

    def test_bad_send_window_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "-n", "3", "--ops", "5", "--drop-rate", "0.1",
                  "--send-window", "0"])


class TestSoakCommand:
    def test_soak_parser_defaults(self):
        args = build_parser().parse_args(["soak"])
        assert args.protocols is None
        assert args.seeds == "1,2,3"

    def test_unknown_soak_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["soak", "--protocols", "bogus", "--seeds", "1"])

    def test_bad_seeds_rejected(self):
        with pytest.raises(SystemExit):
            main(["soak", "--seeds", "x,y"])

    def test_soak_single_cell(self, tmp_path, capsys):
        rc = main(["soak", "--protocols", "optp", "--seeds", "1",
                   "--ops", "25", "--no-determinism", "--no-rto-compare",
                   "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "soak: PASS" in out
        assert (tmp_path / "soak_report.json").exists()
