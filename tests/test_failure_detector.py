"""Heartbeat failure detector: detection, false suspicion, pause/resume.

A true crash must be detected within roughly (timeout + one heartbeat
interval); a partition must produce *false* suspicions that clear on
heal; suspicion must pause the reliable channel (no retransmission burn)
and resume with a flush when the subject answers again.
"""

import pytest

from repro import (
    CausalCluster,
    ConstantLatency,
    CrashEvent,
    DetectorPolicy,
    FaultPlan,
    RetransmitPolicy,
    SimulationConfig,
    run_simulation,
)

FAST_RETX = RetransmitPolicy(base_rto_ms=120.0, max_rto_ms=2000.0, jitter_ms=10.0)


class TestDetectorPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorPolicy(heartbeat_interval_ms=0.0)
        with pytest.raises(ValueError):
            DetectorPolicy(heartbeat_interval_ms=100.0, timeout_ms=50.0)
        with pytest.raises(ValueError):
            DetectorPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            DetectorPolicy(timeout_ms=300.0, max_timeout_ms=100.0)


class TestDetection:
    def test_true_crash_detected_within_bound(self):
        """Constant latency, no drops: detection latency is bounded by
        timeout + one heartbeat interval + delivery latency, and there
        are no false suspicions."""
        policy = DetectorPolicy(heartbeat_interval_ms=50.0, timeout_ms=200.0)
        plan = FaultPlan.build(crashes=(CrashEvent(1, 500.0, 1400.0),))
        result = run_simulation(SimulationConfig(
            protocol="optp", n_sites=4, n_vars=8, ops_per_process=20,
            seed=1, latency=ConstantLatency(10.0),
            fault_plan=plan, fault_seed=0, retransmit=FAST_RETX,
            detector=policy,
        ))
        col = result.collector
        assert col.crashes == 1
        assert col.detection_latency.count == 1
        assert 0 < col.detection_latency.mean <= 200.0 + 50.0 + 10.0 + 1.0
        assert col.false_suspicions == 0
        assert col.heartbeats_sent > 0

    def test_downtime_and_catchup_recorded(self):
        plan = FaultPlan.build(crashes=(CrashEvent(2, 400.0, 1300.0),))
        result = run_simulation(SimulationConfig(
            protocol="opt-track", n_sites=4, n_vars=8, ops_per_process=20,
            seed=2, latency=ConstantLatency(10.0),
            fault_plan=plan, fault_seed=0, retransmit=FAST_RETX,
        ))
        col = result.collector
        assert col.downtime.count == 1
        assert col.downtime.mean == pytest.approx(900.0)
        assert col.catchup_latency.count == 1
        assert col.catchup_latency.mean >= 0.0
        assert col.sync_messages > 0


class TestFalseSuspicion:
    def make(self):
        return CausalCluster(
            4, protocol="optp", n_vars=6,
            latency=ConstantLatency(10.0), fault_plan=FaultPlan(),
            retransmit=FAST_RETX, crash_recovery=True,
            detector=DetectorPolicy(heartbeat_interval_ms=50.0,
                                    timeout_ms=200.0),
        )

    def test_partition_raises_and_heals_false_suspicion(self):
        c = self.make()
        det = c.crash_manager.detector
        c.write(0, var=0, value=1)
        c.advance(100.0)
        assert not det.suspected
        c.partition({3})
        c.advance(600.0)  # heartbeats across the cut are severed
        assert det.suspects(0, 3) and det.suspects(3, 0)
        assert c.collector.false_suspicions > 0
        assert (0, 3) in c.network.transport.paused_pairs
        c.heal()
        c.advance(600.0)  # next heartbeats cross and clear the suspicion
        assert not det.suspected
        assert not c.network.transport.paused_pairs
        c.settle()
        c.check().raise_if_violated()

    def test_backoff_raises_pair_timeout_after_false_suspicion(self):
        c = self.make()
        det = c.crash_manager.detector
        base = det.policy.timeout_ms
        c.write(0, var=0, value=1)
        c.partition({3})
        c.advance(600.0)
        assert det._timeout[(0, 3)] > base  # backed off
        c.heal()
        c.advance(600.0)
        # false suspicion keeps the backed-off timeout (adaptive detector)
        assert det._timeout[(0, 3)] > base
        c.settle()

    def test_suspicion_pauses_retransmissions(self):
        """While a pair is paused, the sender's timer must not burn."""
        c = self.make()
        c.write(0, var=0, value=1)
        c.advance(200.0)
        c.partition({3})
        c.advance(700.0)  # suspicion in place
        before = c.collector.retransmissions
        c.advance(2000.0)
        # paused channels do not retransmit into the partition
        assert c.collector.retransmissions - before <= 2
        c.heal()
        c.advance(1000.0)
        c.settle()
        c.check().raise_if_violated()


class TestRecoveryResetsTimeout:
    def test_genuine_rejoin_returns_pair_to_base_timeout(self):
        policy = DetectorPolicy(heartbeat_interval_ms=50.0, timeout_ms=200.0)
        plan = FaultPlan.build(crashes=(CrashEvent(1, 400.0, 1200.0),))
        result = run_simulation(SimulationConfig(
            protocol="optp", n_sites=3, n_vars=6, ops_per_process=15,
            seed=3, latency=ConstantLatency(10.0),
            fault_plan=plan, fault_seed=0, retransmit=FAST_RETX,
            detector=policy,
        ))
        det = result.crash_manager.detector
        # after the true crash + recovery, observers of site 1 are back
        # at the base timeout (the backoff punished a real crash)
        assert det._timeout[(0, 1)] == policy.timeout_ms
        assert not det.suspected
