"""Partition heal racing the retransmission backoff (satellite of the
crash-recovery PR).

The dangerous interleaving: a partition severs a channel mid-flight, the
sender's RTO backs off past the heal instant, and the first post-heal
retransmission races fresh sends on the same channel.  The reliable
layer must keep per-channel FIFO and exactly-once through that race for
every protocol — including when a crash window overlaps the partition.
"""

import pytest

from repro import (
    CausalCluster,
    ChannelFaults,
    ConstantLatency,
    CrashEvent,
    FaultPlan,
    Partition,
    RetransmitPolicy,
    SimulationConfig,
    UniformLatency,
    run_simulation,
)
from repro.verify.causal_checker import check_causal_consistency
from repro.verify.convergence import check_convergence

from .test_chaos import assert_exactly_once

PROTOCOLS = ["full-track", "opt-track", "opt-track-crp", "optp"]

#: RTO chosen so the backoff doubles *across* the heal boundary: the
#: partition lasts 700ms while retries back off 120 → 240 → 480 → 960,
#: guaranteeing some channel's timer is mid-backoff when the cut heals.
RACY_RETX = RetransmitPolicy(base_rto_ms=120.0, max_rto_ms=2000.0, jitter_ms=10.0)


def racy_run(protocol, *, drop_rate=0.25, crashes=(), seed=3, fault_seed=11):
    plan = FaultPlan.build(
        default=ChannelFaults(drop_rate=drop_rate),
        partitions=(
            Partition([0, 1], 400.0, 1100.0),
            Partition([3], 1300.0, 1900.0),
        ),
        crashes=crashes,
    )
    cfg = SimulationConfig(
        protocol=protocol, n_sites=5, n_vars=10, ops_per_process=30,
        seed=seed, record_history=True, latency=UniformLatency(5.0, 60.0),
        fault_plan=plan, fault_seed=fault_seed, retransmit=RACY_RETX,
    )
    return run_simulation(cfg)


class TestHealRacesRetransmit:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_correct_through_the_race(self, protocol):
        result = racy_run(protocol)
        col = result.collector
        # the race actually happened: cuts dropped packets and the
        # timers kept firing into (and across) the partition
        assert col.injected_partition_drops > 0
        assert col.retransmissions > 0
        check_causal_consistency(result.history, result.placement).raise_if_violated()
        conv = check_convergence(result.protocols, result.history)
        assert conv.ok, conv.illegitimate
        assert_exactly_once(result)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_partition_overlapping_crash_window(self, protocol):
        """Site 3 crashes inside its own partition window and rejoins
        after the heal: the rejoin catch-up must drain both the held
        crash backlog and the partition-severed retransmissions."""
        result = racy_run(protocol, crashes=(CrashEvent(3, 1400.0, 2300.0),))
        col = result.collector
        assert col.crashes == 1
        assert col.downtime.count == 1
        check_causal_consistency(result.history, result.placement).raise_if_violated()
        conv = check_convergence(result.protocols, result.history)
        assert conv.ok, conv.illegitimate
        assert_exactly_once(result)
        assert col.lost_ops == 0

    def test_interactive_heal_flushes_backlog_in_order(self):
        """Writes issued into an active cut arrive post-heal in issue
        order at the severed site (per-channel FIFO survives the race)."""
        c = CausalCluster(4, protocol="optp", n_vars=8,
                          latency=ConstantLatency(10.0),
                          fault_plan=FaultPlan(), retransmit=RACY_RETX)
        c.partition({3})
        for k in range(5):
            c.write(0, var=0, value=f"v{k}")
            c.advance(60.0)
        c.heal()
        c.settle()
        assert c.read(3, 0) == "v4"  # last write wins after the flush
        c.check().raise_if_violated()
