"""Tests for the simcheck AST lint layer (SIM001..SIM008 + SIM000).

Each rule gets a fixture file with a known violation (written under a
``repro/...`` relative path so the path-scoped rules engage) plus a
negative fixture showing the sanctioned idiom passes.  Suppression
handling — same-line, line-above, and the mandatory justification —
is exercised against the framework, and the final test asserts the
live tree itself lints clean, which is the repository's CI gate.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.check import SourceFile, lint_file, lint_paths, rule_by_code
from repro.check.lint import SUPPRESSION_CODE
from repro.check.rules import ALL_RULES, all_rules

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_lint(tmp_path, rel, source, codes=None):
    """Write ``source`` at ``tmp_path/rel`` and lint it.

    ``codes`` restricts the rule set (default: every registered rule).
    Returns the list of findings.
    """
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    rules = all_rules() if codes is None else [rule_by_code(c) for c in codes]
    return lint_file(SourceFile.load(path, root=tmp_path), rules)


def codes_of(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# SIM001 wall clock
# ----------------------------------------------------------------------
class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import time

            def f() -> float:
                return time.time()
        """, codes=["SIM001"])
        assert codes_of(findings) == ["SIM001"]
        assert findings[0].line == 5
        assert "time.time" in findings[0].message
        assert findings[0].hint  # every finding carries a fix-it hint

    def test_datetime_now_and_from_import(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            from time import perf_counter
            from datetime import datetime

            def f():
                a = perf_counter()
                b = datetime.now()
                return a, b
        """, codes=["SIM001"])
        assert codes_of(findings) == ["SIM001", "SIM001"]

    def test_benchmarks_exempt(self, tmp_path):
        findings = run_lint(tmp_path, "benchmarks/fx.py", """
            import time

            def f() -> float:
                return time.perf_counter()
        """, codes=["SIM001"])
        assert findings == []

    def test_perf_harness_exempt(self, tmp_path):
        # repro/perf is the in-package benchmark harness: wall-clock
        # reads are its whole point
        findings = run_lint(tmp_path, "repro/perf/fx.py", """
            import time

            def f() -> float:
                return time.perf_counter()
        """, codes=["SIM001"])
        assert findings == []

    def test_simulated_clock_passes(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self) -> float:
                return self.sim.now
        """, codes=["SIM001"])
        assert findings == []


# ----------------------------------------------------------------------
# SIM002 unseeded randomness
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_module_level_random_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import random

            def f() -> float:
                return random.random()
        """, codes=["SIM002"])
        assert codes_of(findings) == ["SIM002"]

    def test_unseeded_default_rng_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import numpy as np

            def f():
                return np.random.default_rng()
        """, codes=["SIM002"])
        assert codes_of(findings) == ["SIM002"]

    def test_seeded_instances_pass(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import random
            import numpy as np

            def f(seed: int):
                a = random.Random(seed)
                b = np.random.default_rng(seed)
                c = np.random.SeedSequence(seed)
                return a, b, c
        """, codes=["SIM002"])
        assert findings == []


# ----------------------------------------------------------------------
# SIM003 set iteration (hot paths only)
# ----------------------------------------------------------------------
class TestSetIteration:
    SOURCE = """
        def f(items):
            pending = set(items)
            total = 0
            for x in pending:
                total += x
            return total
    """

    def test_for_over_set_flagged_in_core(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", self.SOURCE,
                            codes=["SIM003"])
        assert codes_of(findings) == ["SIM003"]
        assert "sorted" in findings[0].hint

    def test_rule_scoped_to_hot_paths(self, tmp_path):
        findings = run_lint(tmp_path, "repro/experiments/fx.py", self.SOURCE,
                            codes=["SIM003"])
        assert findings == []

    def test_sorted_wrapping_passes(self, tmp_path):
        findings = run_lint(tmp_path, "repro/sim/fx.py", """
            def f(items):
                pending = set(items)
                total = 0
                for x in sorted(pending):
                    total += x
                return total
        """, codes=["SIM003"])
        assert findings == []

    def test_comprehension_over_set_attribute_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/sim/fx.py", """
            class C:
                def __init__(self):
                    self.down: set[int] = set()

                def f(self):
                    return [s + 1 for s in self.down]
        """, codes=["SIM003"])
        assert codes_of(findings) == ["SIM003"]


# ----------------------------------------------------------------------
# SIM004 mutable default
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_list_default_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(acc=[]):
                return acc
        """, codes=["SIM004"])
        assert codes_of(findings) == ["SIM004"]

    def test_dict_call_default_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(state=dict()):
                return state
        """, codes=["SIM004"])
        assert codes_of(findings) == ["SIM004"]

    def test_none_default_passes(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(acc=None, k=3, name="x"):
                return acc, k, name
        """, codes=["SIM004"])
        assert findings == []


# ----------------------------------------------------------------------
# SIM005 mutate after send
# ----------------------------------------------------------------------
class TestMutateAfterSend:
    def test_mutator_call_after_send_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, msg):
                self.ctx.network.send(0, dst, msg)
                msg.dests.append(dst)
        """, codes=["SIM005"])
        assert codes_of(findings) == ["SIM005"]
        assert "'msg'" in findings[0].message

    def test_inline_constructor_capture_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, entries):
                self._send(dst, SomeSM(log=entries))
                entries.append(1)
        """, codes=["SIM005"])
        assert codes_of(findings) == ["SIM005"]

    def test_subscript_assignment_after_send_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, row):
                self._send(dst, row)
                row[0] = 1.0
        """, codes=["SIM005"])
        assert codes_of(findings) == ["SIM005"]

    def test_mutation_before_send_passes(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, msg):
                msg.dests.append(dst)
                self.ctx.network.send(0, dst, msg)
        """, codes=["SIM005"])
        assert findings == []

    def test_unrelated_mutation_passes(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, msg, scratch):
                self.ctx.network.send(0, dst, msg)
                scratch.append(dst)
        """, codes=["SIM005"])
        assert findings == []

    def test_log_pruning_mutators_flagged(self, tmp_path):
        # the OptTrackLog/TupleLog in-place pruning API mutates
        # destination sets that piggybacks may alias
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, log):
                self._send(dst, SomeSM(log=log))
                log.remove_dests({dst})
                log.purge()
                log.reset(0, 1)
        """, codes=["SIM005"])
        assert codes_of(findings) == ["SIM005", "SIM005", "SIM005"]


class TestMutateAfterSendAliasing:
    """SIM005's dataflow half: mutations that reach the payload through
    an alias (assignment, tuple/dict display, comprehension, helper
    call) are flagged; copies break the alias and pass."""

    def test_alias_through_assignment_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, deps):
                self._send(dst, Msg(deps=deps))
                alias = deps
                alias.append(dst)
        """, codes=["SIM005"])
        assert codes_of(findings) == ["SIM005"]
        assert "aliases 'deps'" in findings[0].message

    def test_tuple_display_escape_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, deps):
                pair = (deps, dst)
                self._send(dst, Msg(payload=pair))
                deps.append(dst)
        """, codes=["SIM005"])
        assert codes_of(findings) == ["SIM005"]

    def test_comprehension_element_escape_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dsts, deps):
                msgs = [Msg(deps=deps) for d in dsts]
                self._send(dsts[0], msgs)
                deps.append(0)
        """, codes=["SIM005"])
        assert codes_of(findings) == ["SIM005"]

    def test_helper_call_result_aliases_args(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, deps):
                wrapped = wrap(deps)
                self._send(dst, wrapped)
                deps.append(dst)
        """, codes=["SIM005"])
        assert codes_of(findings) == ["SIM005"]

    def test_copy_breaks_the_alias(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, deps):
                self._send(dst, Msg(deps=list(deps)))
                deps.append(dst)
        """, codes=["SIM005"])
        assert findings == []

    def test_sorted_and_deepcopy_break_the_alias(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import copy

            def f(self, dst, deps, log):
                self._send(dst, Msg(deps=sorted(deps)))
                self._send(dst, Msg(log=copy.deepcopy(log)))
                deps.append(dst)
                log.purge()
        """, codes=["SIM005"])
        assert findings == []

    def test_scalar_builtin_result_not_aliasing(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, deps):
                self._send(dst, Msg(n=len(deps)))
                deps.append(dst)
        """, codes=["SIM005"])
        assert findings == []

    def test_rebinding_detaches_the_name(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, deps):
                self._send(dst, Msg(deps=deps))
                deps = []
                deps.append(dst)
        """, codes=["SIM005"])
        assert findings == []

    def test_comprehension_loop_var_not_an_alias(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self, dst, deps, items):
                view = [x for x in items]
                self._send(dst, Msg(deps=deps))
                view.append(dst)
        """, codes=["SIM005"])
        assert findings == []


# ----------------------------------------------------------------------
# SIM006 float timestamp equality
# ----------------------------------------------------------------------
class TestFloatTimestampEquality:
    def test_eq_on_timey_name_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(arrival_time, deadline):
                return arrival_time == deadline
        """, codes=["SIM006"])
        assert codes_of(findings) == ["SIM006"]

    def test_noteq_against_constant_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(self):
                return self.delivery_ms != 0.0
        """, codes=["SIM006"])
        assert codes_of(findings) == ["SIM006"]

    def test_ordering_comparisons_pass(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(ts, deadline, eps):
                return ts <= deadline and abs(ts - deadline) < eps
        """, codes=["SIM006"])
        assert findings == []

    def test_non_timey_names_pass(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(count, total):
                return count == total
        """, codes=["SIM006"])
        assert findings == []


# ----------------------------------------------------------------------
# SIM007 raw heapq
# ----------------------------------------------------------------------
class TestRawHeapq:
    def test_heapq_call_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import heapq

            def f(h):
                heapq.heappush(h, 1)
        """, codes=["SIM007"])
        assert codes_of(findings) == ["SIM007"]

    def test_from_import_alias_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            from heapq import heappop as pop

            def f(h):
                return pop(h)
        """, codes=["SIM007"])
        assert codes_of(findings) == ["SIM007"]

    def test_engine_exempt(self, tmp_path):
        findings = run_lint(tmp_path, "repro/sim/engine.py", """
            import heapq

            def f(h):
                heapq.heappush(h, 1)
        """, codes=["SIM007"])
        assert findings == []


# ----------------------------------------------------------------------
# SIM008 bare print
# ----------------------------------------------------------------------
class TestNoPrint:
    def test_print_in_library_flagged(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f():
                print("debug")
        """, codes=["SIM008"])
        assert codes_of(findings) == ["SIM008"]

    def test_cli_and_examples_exempt(self, tmp_path):
        for rel in ("repro/cli.py", "examples/fx.py", "tests/fx.py"):
            findings = run_lint(tmp_path, rel, """
                def f():
                    print("user-facing output")
            """, codes=["SIM008"])
            assert findings == [], rel


# ----------------------------------------------------------------------
# suppression machinery
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_same_line_justified_suppression(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import time

            def f() -> float:
                return time.time()  # simcheck: ignore[SIM001] -- wall-clock report only
        """, codes=["SIM001"])
        assert findings == []

    def test_line_above_justified_suppression(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import time

            def f() -> float:
                # simcheck: ignore[SIM001] -- wall-clock report only
                return time.time()
        """, codes=["SIM001"])
        assert findings == []

    def test_unjustified_suppression_surfaces_sim000(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import time

            def f() -> float:
                return time.time()  # simcheck: ignore[SIM001]
        """, codes=["SIM001"])
        # the target rule stays silenced, but the missing justification
        # is a finding of its own: the check still fails
        assert codes_of(findings) == [SUPPRESSION_CODE]

    def test_suppression_only_covers_listed_codes(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import time

            def f() -> float:
                return time.time()  # simcheck: ignore[SIM002] -- wrong code
        """, codes=["SIM001"])
        assert codes_of(findings) == ["SIM001"]

    def test_multi_code_suppression(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import time
            import random

            def f():
                # simcheck: ignore[SIM001, SIM002] -- seeded fixture generator
                return time.time() + random.random()
        """, codes=["SIM001", "SIM002"])
        assert findings == []

    def test_unknown_code_in_suppression_surfaces_sim000(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(x):
                return x  # simcheck: ignore[SIM042] -- typo'd rule code
        """, codes=[])
        assert codes_of(findings) == [SUPPRESSION_CODE]
        assert "unknown rule" in findings[0].message

    def test_analyzer_codes_are_valid_suppression_targets(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            def f(x):
                return x  # simcheck: ignore[EFF001, LAY001] -- transitional
        """, codes=[])
        assert findings == []


# ----------------------------------------------------------------------
# framework behaviors
# ----------------------------------------------------------------------
class TestFramework:
    def test_findings_sorted_and_formatted(self, tmp_path):
        findings = run_lint(tmp_path, "repro/core/fx.py", """
            import time

            def g() -> float:
                return time.time()

            def f(acc=[]):
                return acc
        """, codes=["SIM001", "SIM004"])
        assert codes_of(findings) == ["SIM001", "SIM004"]
        assert [f.line for f in findings] == sorted(f.line for f in findings)
        text = findings[0].format()
        assert "repro/core/fx.py:5:" in text and "SIM001" in text
        assert "hint:" in text

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(:\n")
        findings = lint_paths([bad], all_rules())
        assert codes_of(findings) == ["SIM999"]

    def test_rule_registry_complete(self):
        expected = {f"SIM00{i}" for i in range(1, 9)}
        assert {cls.code for cls in ALL_RULES} == expected
        for cls in ALL_RULES:
            rule = rule_by_code(cls.code)
            assert rule.rationale and rule.hint

    def test_rule_by_code_unknown(self):
        with pytest.raises(KeyError):
            rule_by_code("SIM042")


# ----------------------------------------------------------------------
# the gate the CI job enforces
# ----------------------------------------------------------------------
def test_live_tree_lints_clean():
    """``src/`` must be violation-free (modulo justified suppressions)."""
    findings = lint_paths([REPO_ROOT / "src"], all_rules(), root=REPO_ROOT)
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)
