"""Tests for the HB-Track ablation protocol (happened-before tracking)."""

import pytest

from repro import (
    AdversarialLatency,
    CausalCluster,
    ConstantLatency,
    SimulationConfig,
    check_causal_consistency,
    run_simulation,
)
from repro.experiments.sweep import paired_runs
from repro.metrics.collector import MessageKind


def make(n=3, **kw):
    kw.setdefault("latency", ConstantLatency(10.0))
    return CausalCluster(n, protocol="hb-track", n_vars=6, **kw)


class TestHBTrackSemantics:
    def test_merge_on_receipt_not_on_read(self):
        c = make()
        c.write(0, 0, "v")
        c.settle()
        receiver = c.protocols[1]
        # the defining difference from optP: the clock advanced at apply
        # time, before any read
        assert receiver.write_clock.v.tolist() == [1, 0, 0]

    def test_false_causality_dependency(self):
        # site 1 never reads site 0's write, yet its next write still
        # carries a dependency on it
        c = make()
        c.write(0, 0, "unread")
        c.settle()
        c.write(1, 1, "independent")
        proto = c.protocols[1]
        _, vec = None, proto.write_clock
        assert vec[0] == 1  # false dependency absorbed at receipt

    def test_still_causally_consistent(self):
        cfg = SimulationConfig(protocol="hb-track", n_sites=6, n_vars=8,
                               write_rate=0.5, ops_per_process=30, seed=2,
                               latency=AdversarialLatency(), record_history=True)
        result = run_simulation(cfg)
        check_causal_consistency(result.history, result.placement).raise_if_violated()

    @pytest.mark.parametrize("seed", range(3))
    def test_consistent_across_seeds(self, seed):
        cfg = SimulationConfig(protocol="hb-track", n_sites=4, n_vars=6,
                               write_rate=0.6, ops_per_process=25, seed=seed,
                               latency=AdversarialLatency(), record_history=True)
        result = run_simulation(cfg)
        check_causal_consistency(result.history, result.placement).raise_if_violated()

    def test_same_message_pattern_as_optp(self):
        runs = paired_runs(("optp", "hb-track"), 5, 0.5,
                           ops_per_process=30, seed=1)
        a, b = runs["optp"].collector, runs["hb-track"].collector
        for kind in MessageKind:
            assert a.tally(kind).count == b.tally(kind).count
        # identical metadata too: both carry the size-n vector
        assert a.tally(MessageKind.SM).mean_bytes == b.tally(MessageKind.SM).mean_bytes

    def test_dependency_knowledge_superset_of_optp(self):
        runs = paired_runs(("optp", "hb-track"), 5, 0.5,
                           ops_per_process=40, seed=3)
        for opt_p, hb_p in zip(runs["optp"].protocols, runs["hb-track"].protocols):
            # hb clock dominates the optp clock at every site: -> ⊇ ->co
            assert (hb_p.write_clock.v >= opt_p.write_clock.v).all()

    def test_requires_full_replication(self):
        cfg = SimulationConfig(protocol="hb-track", n_sites=4,
                               replication_factor=2, ops_per_process=5)
        with pytest.raises(ValueError, match="full replication"):
            run_simulation(cfg)
