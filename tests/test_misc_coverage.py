"""Coverage for smaller corners: events, sweep configs, reports, cluster."""

import pytest

from repro import CausalCluster, ConstantLatency
from repro.experiments.report import write_csv
from repro.experiments.sweep import CellResult, cell_config
from repro.sim.events import EventKind, EventRecord


class TestEventRecords:
    def test_roundtrip_full(self):
        ev = EventRecord(kind=EventKind.APPLY, time=3.5, site=2, var=7,
                         value=99, write_id=(1, 4), op_index=12, peer=3,
                         detail="x")
        again = EventRecord.from_dict(ev.as_dict())
        assert again == ev

    def test_roundtrip_minimal(self):
        ev = EventRecord(kind=EventKind.SEND, time=0.0, site=0)
        again = EventRecord.from_dict(ev.as_dict())
        assert again.write_id is None and again.var is None

    def test_kind_values_cover_paper_events(self):
        names = {k.value for k in EventKind}
        assert {"send", "fetch", "receipt", "apply", "remote_return",
                "return"} <= names

    def test_records_are_frozen(self):
        ev = EventRecord(kind=EventKind.SEND, time=0.0, site=0)
        with pytest.raises(AttributeError):
            ev.site = 5


class TestSweepHelpers:
    def test_cell_config_canonical_fields(self):
        cfg = cell_config("opt-track", 10, 0.5, ops_per_process=77, seed=3)
        assert cfg.n_sites == 10
        assert cfg.write_rate == 0.5
        assert cfg.ops_per_process == 77
        assert cfg.seed == 3
        assert cfg.n_vars == 100  # the paper's q

    def test_cell_config_overrides(self):
        cfg = cell_config("opt-track", 5, 0.2, ops_per_process=10,
                          warmup_fraction=0.0, replication_factor=4)
        assert cfg.warmup_fraction == 0.0
        assert cfg.resolved_replication_factor() == 4

    def test_cell_result_accessors(self):
        cell = CellResult({
            "SM_mean_bytes": 1.0, "RM_mean_bytes": 2.0, "FM_mean_bytes": 3.0,
            "total_metadata_bytes": 10.0, "total_message_count": 4,
        })
        assert cell.mean_sm == 1.0
        assert cell.mean_rm == 2.0
        assert cell.mean_fm == 3.0
        assert cell.total_bytes == 10.0
        assert cell.total_count == 4


class TestReportFiles:
    def test_write_csv_to_disk(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_csv([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}], path)
        lines = path.read_text().splitlines()
        assert lines[0] == "a,b"
        assert lines[2] == "2,y"

    def test_write_csv_column_subset(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_csv([{"a": 1, "b": 2}], path, columns=["b"])
        assert path.read_text().splitlines()[0] == "b"


class TestClusterMisc:
    def test_advance_negative_rejected(self):
        c = CausalCluster(2, protocol="optp", n_vars=2,
                          latency=ConstantLatency(1.0))
        with pytest.raises(ValueError):
            c.advance(-1.0)

    def test_now_tracks_simulated_time(self):
        c = CausalCluster(2, protocol="optp", n_vars=2,
                          latency=ConstantLatency(1.0))
        assert c.now == 0.0
        c.advance(25.0)
        assert c.now == 25.0

    def test_write_ids_monotone_per_site(self):
        c = CausalCluster(2, protocol="optp", n_vars=2,
                          latency=ConstantLatency(1.0))
        w1 = c.write(0, 0, "a")
        w2 = c.write(0, 1, "b")
        assert w2.clock == w1.clock + 1
        assert w1.site == w2.site == 0

    def test_deterministic_given_seed(self):
        def run():
            c = CausalCluster(3, protocol="opt-track", n_vars=4, seed=5)
            for k in range(6):
                c.write(k % 3, k % 4, k)
                c.advance(20.0)
            c.settle()
            return c.collector.as_dict()

        assert run() == run()

    def test_pause_out_of_range(self):
        c = CausalCluster(2, protocol="optp", n_vars=2)
        with pytest.raises(ValueError):
            c.pause_site(5)
